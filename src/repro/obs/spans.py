"""Causal span lineage for simulated tuple batches.

Every batch the simulator creates — a source arrival or a delivery
fanned out from a completed batch — opens a *span*: one node of the
causal forest that links each sink tuple back to the source injection
it descends from.  The engine emits two events per span, both declared
in :mod:`repro.obs.schema`:

``span.open``
    At batch creation.  Carries the span id, the operator/port the
    batch is bound for, the tuple count, the birth time of the
    originating source tuples, and — for delivery batches — the
    ``parent`` span id of the batch whose completion produced it.
    Source batches have no parent.  The event timestamp is the batch's
    arrival at its operator.
``span.close``
    At batch completion.  Carries the serving ``node``, the service
    ``start`` time, the CPU ``work`` charged, the ``out`` count, and —
    for sink completions — the ``sink`` stream name plus the exact
    end-to-end ``latency`` the engine recorded into
    ``SimulationResult.latency`` (the same float, so analyzers can
    reconcile bit-for-bit; see :mod:`repro.obs.critical_path`).

Span ids are allocated by a monotonic counter, and a child is always
created by its parent's completion, so ``parent < span`` for every
edge.  That makes the lineage graph trivially acyclic and gives a free
topological order: iterate ids descending to propagate sink weights
rootward.  A span that never closes is a stranded batch — its node
crashed (or drained past the horizon) with no failover to rescue it.

:class:`SpanEmitter` is the engine-side writer; the rest of the module
reconstructs (:func:`spans_from_trace`), validates
(:func:`validate_span_dag`) and slices (:func:`span_lineage`) the
forest from a recorded trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set

from .trace import TraceEvent, Tracer

__all__ = [
    "SpanEmitter",
    "SpanRecord",
    "span_lineage",
    "spans_from_trace",
    "validate_span_dag",
]


class SpanEmitter:
    """Allocates span ids and emits their open/close events.

    The engine constructs one per traced run.  ``open_span`` returns
    the allocated id so the caller can store it on the batch it is
    creating; ``close_span`` is called with that id when the batch
    finishes service.  The emitter itself never touches wall clocks or
    randomness — ids are a plain counter, so traces stay deterministic.
    """

    __slots__ = ("_tracer", "_next_id")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._next_id = 0

    def open_span(
        self,
        t: float,
        *,
        operator: str,
        port: int,
        count: int,
        birth: float,
        parent: Optional[int] = None,
    ) -> int:
        """Emit ``span.open`` for a new batch and return its span id."""
        span = self._next_id
        self._next_id = span + 1
        if parent is None:
            self._tracer.emit(
                "span.open",
                t=t,
                span=span,
                operator=operator,
                port=port,
                count=count,
                birth=birth,
            )
        else:
            self._tracer.emit(
                "span.open",
                t=t,
                span=span,
                operator=operator,
                port=port,
                count=count,
                birth=birth,
                parent=parent,
            )
        return span

    def close_span(
        self,
        span: int,
        t: float,
        *,
        node: int,
        start: float,
        work: float,
        out: int,
        sink: Optional[str] = None,
        latency: Optional[float] = None,
    ) -> None:
        """Emit ``span.close`` for a batch that finished service."""
        if sink is None:
            self._tracer.emit(
                "span.close",
                t=t,
                span=span,
                node=node,
                start=start,
                work=work,
                out=out,
            )
        else:
            self._tracer.emit(
                "span.close",
                t=t,
                span=span,
                node=node,
                start=start,
                work=work,
                out=out,
                sink=sink,
                latency=latency,
            )


@dataclass
class SpanRecord:
    """One reconstructed span: open fields plus close fields if closed."""

    span: int
    operator: str
    port: int
    count: int
    birth: float
    open_t: float
    parent: Optional[int] = None
    # Close-side fields; ``closed`` is False for stranded batches.
    closed: bool = False
    node: int = -1
    start: float = 0.0
    end: float = 0.0
    work: float = 0.0
    out: int = 0
    sink: Optional[str] = None
    latency: Optional[float] = None

    @property
    def is_sink(self) -> bool:
        """True when this span produced sink tuples (terminal output)."""
        return self.sink is not None

    @property
    def wait_seconds(self) -> float:
        """Time spent between arrival and service start (closed spans)."""
        return self.start - self.open_t

    @property
    def service_seconds(self) -> float:
        """Time spent in service on the node (closed spans)."""
        return self.end - self.start


def spans_from_trace(events: Iterable[TraceEvent]) -> Dict[int, SpanRecord]:
    """Rebuild the span forest from trace events, keyed by span id.

    Tolerant of non-span events in the stream; raises ``ValueError`` on
    structurally impossible traces (duplicate opens, close without an
    open, double close) because no analyzer can make sense of those.
    Structural *lineage* problems — orphan parents, id-order violations
    — are the province of :func:`validate_span_dag`, which reports
    rather than raises.
    """
    spans: Dict[int, SpanRecord] = {}
    for event in events:
        f = event.fields
        if event.type == "span.open":
            span_id = int(f["span"])  # type: ignore[call-overload]
            if span_id in spans:
                raise ValueError(f"span {span_id} opened twice")
            parent = f.get("parent")
            spans[span_id] = SpanRecord(
                span=span_id,
                operator=str(f["operator"]),
                port=int(f["port"]),  # type: ignore[call-overload]
                count=int(f["count"]),  # type: ignore[call-overload]
                birth=float(f["birth"]),  # type: ignore[arg-type]
                open_t=0.0 if event.t is None else float(event.t),
                parent=(
                    None if parent is None
                    else int(parent)  # type: ignore[call-overload]
                ),
            )
        elif event.type == "span.close":
            span_id = int(f["span"])  # type: ignore[call-overload]
            record = spans.get(span_id)
            if record is None:
                raise ValueError(f"span {span_id} closed without an open")
            if record.closed:
                raise ValueError(f"span {span_id} closed twice")
            record.closed = True
            record.node = int(f["node"])  # type: ignore[call-overload]
            record.start = float(f["start"])  # type: ignore[arg-type]
            record.end = 0.0 if event.t is None else float(event.t)
            record.work = float(f["work"])  # type: ignore[arg-type]
            record.out = int(f["out"])  # type: ignore[call-overload]
            sink = f.get("sink")
            record.sink = None if sink is None else str(sink)
            latency = f.get("latency")
            record.latency = (
                None if latency is None
                else float(latency)  # type: ignore[arg-type]
            )
    return spans


def validate_span_dag(spans: Mapping[int, SpanRecord]) -> List[str]:
    """Check lineage well-formedness; return problem descriptions.

    An empty list means the forest is sound: every parent id refers to
    an existing span, every edge points strictly backward in id order
    (``parent < span``, which rules out cycles outright), and every
    closed span has coherent time bounds
    (``open_t <= start <= end``).
    """
    problems: List[str] = []
    for span_id in sorted(spans):
        record = spans[span_id]
        parent = record.parent
        if parent is not None:
            if parent not in spans:
                problems.append(
                    f"span {span_id}: orphan parent {parent} never opened"
                )
            elif parent >= span_id:
                problems.append(
                    f"span {span_id}: parent {parent} does not precede it "
                    "(lineage must point backward in id order)"
                )
        if record.closed:
            if record.start < record.open_t:
                problems.append(
                    f"span {span_id}: service started at {record.start!r} "
                    f"before its arrival at {record.open_t!r}"
                )
            if record.end < record.start:
                problems.append(
                    f"span {span_id}: closed at {record.end!r} before "
                    f"service started at {record.start!r}"
                )
            if record.is_sink and record.latency is None:
                problems.append(
                    f"span {span_id}: sink close carries no latency"
                )
    return problems


def span_lineage(
    spans: Mapping[int, SpanRecord], span_id: int
) -> Set[int]:
    """The full lineage closure of one span: ancestors + descendants.

    Returns the set of span ids on any causal path through ``span_id``
    — the slice ``repro-rod trace --span`` uses to pull one batch's
    history out of a large trace.  Raises ``KeyError`` for unknown ids.
    """
    if span_id not in spans:
        raise KeyError(f"span {span_id} does not appear in the trace")
    children: Dict[int, List[int]] = {}
    for record in spans.values():
        if record.parent is not None:
            children.setdefault(record.parent, []).append(record.span)
    closure = {span_id}
    # Ancestors: walk parent links rootward.
    cursor = spans[span_id].parent
    while cursor is not None and cursor in spans:
        if cursor in closure:  # defensive: cyclic lineage would spin
            break
        closure.add(cursor)
        cursor = spans[cursor].parent
    # Descendants: breadth-first over the child map.
    frontier = [span_id]
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            if child not in closure:
                closure.add(child)
                frontier.append(child)
    return closure
