"""Run registry: persistent run directories with provenance manifests.

Every instrumented invocation — ``Deployment.simulate``, ``repro-rod
evaluate``, ``repro-rod experiment`` — can record itself as a *run
directory*::

    runs/<run_id>/
        manifest.json   # provenance: config hash, seeds, placement,
                        # package version, CLI argv, wall/sim clocks
        trace.jsonl     # the structured event stream (when traced)
        result.json     # metrics snapshot (flat, diffable numbers)
        metrics.json    # full MetricsRegistry.to_json() dump

The registry turns one-shot terminal output into queryable artifacts:
``repro-rod runs list/show`` browses them, ``repro-rod compare``
(:mod:`repro.obs.diff`) diffs two snapshots with regression thresholds,
and ``repro-rod report`` (:mod:`repro.obs.report_html`) renders a
self-contained HTML report.

A :class:`RunWriter` records one run; :class:`Run` reads one back;
:func:`list_runs` / :func:`find_run` locate them under a root directory
(``runs/`` by default).  Everything is plain JSON — no database, no
external dependency — so run directories can be committed as regression
baselines (see the CI compare step).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .metrics import MetricsRegistry
from .trace import JsonlSink, TraceEvent, read_trace

__all__ = [
    "MANIFEST_NAME",
    "METRICS_NAME",
    "RESULT_NAME",
    "RUN_FORMAT_VERSION",
    "TRACE_NAME",
    "DEFAULT_ROOT",
    "RunManifest",
    "RunWriter",
    "Run",
    "config_digest",
    "find_run",
    "list_runs",
    "load_run",
    "snapshot_from_result",
    "snapshot_from_rows",
]

#: Bumped when the on-disk layout changes incompatibly.
RUN_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
TRACE_NAME = "trace.jsonl"
RESULT_NAME = "result.json"
METRICS_NAME = "metrics.json"

#: Default registry root, relative to the working directory.
DEFAULT_ROOT = "runs"


def _jsonable(value: object) -> object:
    """Fallback serializer: numpy scalars/arrays -> numbers/lists."""
    for attr in ("tolist", "item"):
        convert = getattr(value, attr, None)
        if callable(convert):
            return convert()
    raise TypeError(
        f"run artifact field of type {type(value).__name__} is not "
        "JSON-serializable"
    )


def config_digest(config: object) -> str:
    """Short stable hash of a JSON-able configuration object.

    Canonical JSON (sorted keys, no whitespace) hashed with SHA-256,
    truncated to 12 hex characters — enough to tell two configurations
    apart at a glance in ``runs list`` output.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=_jsonable
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _package_version() -> str:
    try:
        from .. import __version__
        return str(__version__)
    except Exception:  # pragma: no cover - partial-init fallback
        return "unknown"


@dataclass
class RunManifest:
    """Provenance header of one run directory (``manifest.json``)."""

    run_id: str
    kind: str                          # "simulate" | "evaluate" | ...
    created_wall: float                # epoch seconds at run start
    config: Dict[str, object] = field(default_factory=dict)
    config_digest: str = ""
    seed: Optional[int] = None
    version: str = ""
    argv: List[str] = field(default_factory=list)
    wall_seconds: Optional[float] = None   # wall-clock duration of the run
    sim_seconds: Optional[float] = None    # simulated horizon, if any
    placement: Optional[Dict[str, object]] = None
    labels: Dict[str, str] = field(default_factory=dict)
    format: int = RUN_FORMAT_VERSION

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "format": self.format,
            "run_id": self.run_id,
            "kind": self.kind,
            "created_wall": self.created_wall,
            "config": self.config,
            "config_digest": self.config_digest,
            "seed": self.seed,
            "version": self.version,
            "argv": list(self.argv),
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "placement": self.placement,
            "labels": dict(self.labels),
        }

    @classmethod
    def from_json_obj(cls, obj: Mapping[str, object]) -> "RunManifest":
        if "run_id" not in obj or "kind" not in obj:
            raise ValueError("run manifest lacks run_id/kind")
        return cls(
            run_id=str(obj["run_id"]),
            kind=str(obj["kind"]),
            created_wall=float(obj.get("created_wall", 0.0)),
            config=dict(obj.get("config", {})),  # type: ignore[arg-type]
            config_digest=str(obj.get("config_digest", "")),
            seed=None if obj.get("seed") is None else int(obj["seed"]),  # type: ignore[arg-type]
            version=str(obj.get("version", "")),
            argv=[str(a) for a in obj.get("argv", [])],  # type: ignore[union-attr]
            wall_seconds=(
                None if obj.get("wall_seconds") is None
                else float(obj["wall_seconds"])  # type: ignore[arg-type]
            ),
            sim_seconds=(
                None if obj.get("sim_seconds") is None
                else float(obj["sim_seconds"])  # type: ignore[arg-type]
            ),
            placement=obj.get("placement"),  # type: ignore[arg-type]
            labels={
                str(k): str(v)
                for k, v in dict(obj.get("labels", {})).items()  # type: ignore[arg-type]
            },
            format=int(obj.get("format", RUN_FORMAT_VERSION)),  # type: ignore[arg-type]
        )


def snapshot_from_result(result: object) -> Dict[str, object]:
    """Flatten a ``SimulationResult`` into the ``result.json`` snapshot.

    Every value is a plain JSON number/list so :mod:`repro.obs.diff` can
    compare snapshots key by key.  Accepts the result duck-typed to keep
    this module import-light (no simulator dependency).
    """
    latency = result.latency  # type: ignore[attr-defined]
    snapshot: Dict[str, object] = {
        "kind": "simulate",
        "duration": float(result.duration),  # type: ignore[attr-defined]
        "tuples_in": int(result.tuples_in),  # type: ignore[attr-defined]
        "tuples_out": int(result.tuples_out),  # type: ignore[attr-defined]
        "max_utilization": float(result.max_utilization),  # type: ignore[attr-defined]
        "node_busy": [float(v) for v in result.node_busy],  # type: ignore[attr-defined]
        "node_utilization": [
            float(v) for v in result.node_utilization  # type: ignore[attr-defined]
        ],
        "backlog_seconds": [
            float(v) for v in result.backlog_seconds  # type: ignore[attr-defined]
        ],
        "latency": {
            "mean": latency.mean(),
            "max": latency.maximum(),
            "tuples": latency.total_tuples,
            **latency.percentiles(),
        },
        "migrations": int(result.migration_count),  # type: ignore[attr-defined]
        "migration_pause": float(
            result.total_migration_pause  # type: ignore[attr-defined]
        ),
        "operators": {
            name: {
                "tuples_in": stats.tuples_in,
                "tuples_out": stats.tuples_out,
                "work_seconds": stats.work_seconds,
            }
            for name, stats in sorted(
                result.operator_stats.items()  # type: ignore[attr-defined]
            )
        },
        "sink_latency": {
            sink: {"mean": s.mean(), **s.percentiles()}
            for sink, s in sorted(
                result.sink_latency.items()  # type: ignore[attr-defined]
            )
        },
    }
    # Fault fields are conditional so fault-free snapshots stay byte-
    # compatible with baselines committed before fault injection existed.
    faults = list(getattr(result, "faults", ()) or ())
    if faults:
        snapshot["faults"] = [
            {
                "time": float(f.time),
                "kind": str(f.kind),
                "node": None if f.node is None else int(f.node),
                "operator": f.operator,
                "factor": (
                    None if f.factor is None else float(f.factor)
                ),
                "duration": (
                    None if f.duration is None else float(f.duration)
                ),
            }
            for f in faults
        ]
        snapshot["stranded_tuples"] = int(
            getattr(result, "stranded_tuples", 0)
        )
    return snapshot


def snapshot_from_rows(
    rows: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """``result.json`` snapshot for an experiment's row table."""
    return {"kind": "experiment", "rows": [dict(row) for row in rows]}


def _unique_run_dir(root: str, run_id: str) -> str:
    """Reserve ``root/run_id`` (suffixing ``-2``, ``-3``… on collision)."""
    os.makedirs(root, exist_ok=True)
    candidate = run_id
    counter = 2
    while True:
        path = os.path.join(root, candidate)
        try:
            os.mkdir(path)
            return path
        except FileExistsError:
            candidate = f"{run_id}-{counter}"
            counter += 1


class RunWriter:
    """Records one run directory; create, attach artifacts, ``finish``.

    >>> import tempfile
    >>> root = tempfile.mkdtemp()
    >>> writer = RunWriter(root, kind="evaluate", run_id="demo",
    ...                    config={"graph": "g"})
    >>> writer.finish(snapshot={"kind": "evaluate", "volume_ratio": 0.5})
    >>> load_run(writer.path).result["volume_ratio"]
    0.5
    """

    def __init__(
        self,
        root: str = DEFAULT_ROOT,
        kind: str = "run",
        run_id: Optional[str] = None,
        config: Optional[Mapping[str, object]] = None,
        seed: Optional[int] = None,
        argv: Optional[Sequence[str]] = None,
        placement: Optional[Mapping[str, object]] = None,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        created = time.time()
        digest = config_digest(dict(config or {}))
        if run_id is None:
            stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(created))
            run_id = f"{stamp}-{digest[:8]}"
        self.path = _unique_run_dir(root, run_id)
        self.manifest = RunManifest(
            run_id=os.path.basename(self.path),
            kind=kind,
            created_wall=created,
            config=dict(config or {}),
            config_digest=digest,
            seed=seed,
            version=_package_version(),
            argv=list(argv if argv is not None else []),
            placement=dict(placement) if placement is not None else None,
            labels=dict(labels or {}),
        )
        self._start = time.perf_counter()
        self._trace_sink: Optional[JsonlSink] = None
        self._finished = False

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def trace_path(self) -> str:
        return os.path.join(self.path, TRACE_NAME)

    def trace_sink(self) -> JsonlSink:
        """A JSONL sink writing the run's ``trace.jsonl`` (memoized)."""
        if self._trace_sink is None:
            self._trace_sink = JsonlSink(self.trace_path)
        return self._trace_sink

    def finish(
        self,
        snapshot: Optional[Mapping[str, object]] = None,
        registry: Optional[MetricsRegistry] = None,
        sim_seconds: Optional[float] = None,
    ) -> RunManifest:
        """Close the trace and write manifest/result/metrics files.

        Idempotent by refusal: a second call raises, so a run directory
        is never silently rewritten after it was sealed.
        """
        if self._finished:
            raise RuntimeError(f"run {self.run_id!r} is already finished")
        self._finished = True
        if self._trace_sink is not None:
            self._trace_sink.close()
        self.manifest.wall_seconds = time.perf_counter() - self._start
        self.manifest.sim_seconds = sim_seconds
        if snapshot is not None:
            self._write_json(RESULT_NAME, dict(snapshot))
        if registry is not None:
            self._write_json(METRICS_NAME, registry.to_json())
        self._write_json(MANIFEST_NAME, self.manifest.to_json_obj())
        return self.manifest

    def _write_json(self, name: str, obj: Mapping[str, object]) -> None:
        with open(os.path.join(self.path, name), "w",
                  encoding="utf-8") as handle:
            json.dump(obj, handle, indent=2, sort_keys=True,
                      default=_jsonable)
            handle.write("\n")


class Run:
    """Read-only view of one recorded run directory (lazy loads)."""

    def __init__(self, path: str) -> None:
        if not os.path.isdir(path):
            raise FileNotFoundError(f"run directory not found: {path}")
        self.path = path
        self._manifest: Optional[RunManifest] = None
        self._result: Optional[Dict[str, object]] = None
        self._metrics: Optional[Dict[str, object]] = None

    def _read_json(self, name: str) -> Dict[str, object]:
        with open(os.path.join(self.path, name), encoding="utf-8") as handle:
            obj = json.load(handle)
        if not isinstance(obj, dict):
            raise ValueError(f"{name} in {self.path} is not a JSON object")
        return obj

    @property
    def manifest(self) -> RunManifest:
        if self._manifest is None:
            self._manifest = RunManifest.from_json_obj(
                self._read_json(MANIFEST_NAME)
            )
        return self._manifest

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    @property
    def result(self) -> Dict[str, object]:
        """The ``result.json`` snapshot (``{}`` when none was written)."""
        if self._result is None:
            try:
                self._result = self._read_json(RESULT_NAME)
            except FileNotFoundError:
                self._result = {}
        return self._result

    @property
    def metrics(self) -> Dict[str, object]:
        """The ``metrics.json`` registry dump (``{}`` when absent)."""
        if self._metrics is None:
            try:
                self._metrics = self._read_json(METRICS_NAME)
            except FileNotFoundError:
                self._metrics = {}
        return self._metrics

    @property
    def has_trace(self) -> bool:
        return os.path.exists(os.path.join(self.path, TRACE_NAME))

    def events(self) -> List[TraceEvent]:
        """Parse the run's trace (``[]`` when the run was untraced)."""
        if not self.has_trace:
            return []
        return read_trace(os.path.join(self.path, TRACE_NAME))

    def __repr__(self) -> str:
        return f"Run({self.path!r})"


def load_run(path: str) -> Run:
    """Open a run directory; raises ``FileNotFoundError`` if missing."""
    return Run(path)


def find_run(ref: str, root: str = DEFAULT_ROOT) -> Run:
    """Resolve ``ref`` as a run directory path or a run id under ``root``."""
    if os.path.isdir(ref):
        return Run(ref)
    candidate = os.path.join(root, ref)
    if os.path.isdir(candidate):
        return Run(candidate)
    raise FileNotFoundError(
        f"no run {ref!r} (looked at {ref!r} and {candidate!r}); "
        f"`repro-rod runs list --root {root}` shows recorded runs"
    )


def list_runs(root: str = DEFAULT_ROOT) -> List[Run]:
    """All runs under ``root``, oldest first (by manifest wall clock).

    Directories without a readable manifest are skipped — a half-written
    run (crash mid-record) must not break browsing the rest.
    """
    if not os.path.isdir(root):
        return []
    runs = []
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if not os.path.isdir(path):
            continue
        try:
            run = Run(path)
            run.manifest  # noqa: B018 - probe that the manifest parses
        except (OSError, ValueError, KeyError):
            continue
        runs.append(run)
    runs.sort(key=lambda r: (r.manifest.created_wall, r.run_id))
    return runs
