"""Zero-dependency metrics registry: counters, gauges, histograms.

Every metric belongs to a :class:`MetricsRegistry` and is identified by a
Prometheus-style name plus an optional set of label names.  Registering
the same name twice returns the existing family (so modules can
``registry.counter(...)`` idempotently); re-registering with a different
type or label set is an error.

Two exporters ship with the registry:

* :meth:`MetricsRegistry.to_json` — a plain dict, stable key order,
  suitable for ``json.dump``;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` lines, cumulative
  ``_bucket`` series for histograms).

The registry is deliberately simple — no background threads, no global
default instance — because its job here is to make simulator, placement
and deployment internals observable, not to be a telemetry pipeline.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default histogram buckets, tuned for seconds-scale phase timings.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Value that may go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._value -= float(amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram of observations.

    Buckets are upper bounds; an implicit ``+inf`` bucket catches the
    tail.  ``count`` and ``sum`` track all observations regardless of
    bucketing.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +inf
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def mean(self) -> float:
        """Average observation; 0.0 when nothing was observed."""
        return self._sum / self._count if self._count else 0.0

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``inf`` last."""
        result = []
        cumulative = 0
        for bound, count in zip(self._bounds, self._counts):
            cumulative += count
            result.append((bound, cumulative))
        result.append((float("inf"), self._count))
        return result

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile, ``q`` in [0, 100].

        Linear interpolation inside the bucket the rank falls in — the
        same estimate Prometheus's ``histogram_quantile`` computes.  The
        first bucket's lower edge is taken as ``min(0, first bound)``;
        ranks landing in the ``+inf`` bucket return the largest finite
        bound (the tail has no upper edge to interpolate towards).
        Returns ``0.0`` when nothing was observed, matching the
        empty-sample contract of
        :meth:`repro.simulator.metrics.LatencyStats.percentile`.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        target = q / 100.0 * self._count
        cumulative = 0
        lower = min(0.0, self._bounds[0])
        for bound, count in zip(self._bounds, self._counts):
            if count > 0 and cumulative + count >= target:
                fraction = (target - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
            lower = bound
        return self._bounds[-1]

    def percentiles(self) -> Dict[str, float]:
        """Headline quantiles ``{"p50", "p95", "p99"}``, interpolated.

        Mirrors :meth:`repro.simulator.metrics.LatencyStats.percentiles`
        so histogram-backed and sample-backed latency views expose the
        same keys.
        """
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names in {labelnames!r}")
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if buckets is not None and kind != "histogram":
            raise ValueError("buckets only apply to histograms")
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_BUCKETS)
        return _KINDS[self.kind]()

    def labels(self, **labelvalues: object):
        """Child metric for the given label values (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    # Unlabeled convenience: a family with no label names behaves as its
    # single child, so ``registry.counter("x").inc()`` reads naturally.

    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} has labels {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum

    def mean(self) -> float:
        return self._solo().mean()

    def buckets(self) -> List[Tuple[float, int]]:
        return self._solo().buckets()

    def percentile(self, q: float) -> float:
        return self._solo().percentile(q)

    def percentiles(self) -> Dict[str, float]:
        return self._solo().percentiles()

    def samples(self) -> List[Tuple[Dict[str, str], object]]:
        """``(labels_dict, child)`` pairs in insertion order."""
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in self._children.items()
        ]


class MetricsRegistry:
    """Namespace of metric families with JSON and Prometheus exporters."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -------------------------------------------------------- registration

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}"
                )
            return existing
        family = MetricFamily(name, kind, help_text, labelnames, buckets)
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        return self._register(name, "counter", help_text, labelnames)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        return self._register(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        return self._register(name, "histogram", help_text, labelnames,
                              buckets)

    # ------------------------------------------------------------- queries

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    def __len__(self) -> int:
        return len(self._families)

    # ----------------------------------------------------------- exporters

    def to_json(self) -> Dict[str, object]:
        """Plain-dict snapshot (name -> type/help/samples)."""
        out: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for labels, child in family.samples():
                if isinstance(child, Histogram):
                    samples.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": [
                            {"le": le, "count": count}
                            for le, count in child.buckets()
                        ],
                        "percentiles": child.percentiles(),
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help_text,
                "samples": samples,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help_text:
                lines.append(
                    f"# HELP {family.name} "
                    f"{_escape_help(family.help_text)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.samples():
                if isinstance(child, Histogram):
                    for le, count in child.buckets():
                        le_text = "+Inf" if le == float("inf") else _fmt(le)
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = le_text
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_label_text(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{family.name}_sum{_label_text(labels)} "
                        f"{_fmt(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_label_text(labels)} "
                        f"{child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_label_text(labels)} "
                        f"{_fmt(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    # Exposition format spells non-finite values +Inf/-Inf/NaN; int()
    # on them raises, so they must be handled before the integer check.
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"
