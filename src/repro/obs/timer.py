"""Profiling hooks: ``perf_counter`` phase timers.

A :class:`PhaseTimer` context manager measures one named phase of work
(a placement search, a verification pass, a simulator run) and records
the duration twice:

* into a ``repro_phase_seconds{phase=...}`` histogram on a
  :class:`~repro.obs.metrics.MetricsRegistry`, so repeated phases
  aggregate (count / total / mean);
* as a ``phase`` trace event on a :class:`~repro.obs.trace.Tracer`, so
  the timing lands in the same JSONL stream as the events it brackets.

Both destinations are optional; with neither, the timer still exposes
``.seconds`` for ad-hoc use.  :func:`phase_report` renders a registry's
accumulated phase timings as the text block ``Deployment.summary()``
appends.
"""

from __future__ import annotations

import time
from typing import Mapping, Optional

from .metrics import Histogram, MetricsRegistry
from .trace import Tracer

__all__ = ["PHASE_METRIC", "PhaseTimer", "phase_report"]

#: Histogram (labelled by phase name) every timer records into.
PHASE_METRIC = "repro_phase_seconds"


class PhaseTimer:
    """Context manager timing one phase with ``time.perf_counter``."""

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = name
        self.registry = registry
        self.tracer = tracer
        self.fields = dict(fields or {})
        self.seconds: Optional[float] = None
        self._start: Optional[float] = None

    def __enter__(self) -> "PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:  # pragma: no cover - misuse guard
            return
        self.seconds = time.perf_counter() - self._start
        if self.registry is not None:
            self.registry.histogram(
                PHASE_METRIC,
                "wall-clock seconds spent per profiled phase",
                ("phase",),
            ).labels(phase=self.name).observe(self.seconds)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                "phase", name=self.name, seconds=self.seconds, **self.fields
            )


def phase_report(registry: MetricsRegistry) -> str:
    """Text table of accumulated phase timings; ``""`` when none."""
    family = registry.get(PHASE_METRIC)
    if family is None:
        return ""
    lines = []
    for labels, child in family.samples():
        if not isinstance(child, Histogram) or child.count == 0:
            continue
        name = labels.get("phase", "?")
        lines.append(
            f"  {name}: calls={child.count} "
            f"total={child.sum * 1e3:.2f}ms "
            f"mean={child.mean() * 1e3:.2f}ms"
        )
    return "\n".join(lines)
