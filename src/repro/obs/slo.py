"""Declarative service-level objectives evaluated over run traces.

The paper's experiments care about *staying* within a latency bound as
load varies — this module turns that into a checkable verdict.  An SLO
config is a JSON object::

    {"objectives": [
        {"name": "p99-interactive", "kind": "latency",
         "threshold_seconds": 0.5, "target": 0.99,
         "window_seconds": 10.0, "max_burn_rate": 2.0},
        {"name": "sustained-output", "kind": "throughput",
         "min_tuples_per_second": 50.0, "window_seconds": 10.0}
    ]}

*Latency* objectives use error-budget semantics: at least ``target``
of all sink tuples must land within ``threshold_seconds``, so the
error budget is ``1 - target``.  The run is cut into fixed
``window_seconds`` windows and each window's *burn rate* is its bad
fraction divided by the budget — burn rate 1.0 spends the budget
exactly at the allowed pace, and any window burning faster than
``max_burn_rate`` (default 1.0) is a breach.  *Throughput* objectives
require every full window inside the arrival horizon to deliver at
least ``min_tuples_per_second`` of sink output.

:func:`evaluate_slos` consumes sink ``batch.serviced`` events (present
in every recorded trace since the run registry landed), so it works on
old traces as well as span-bearing ones.  Results surface three ways:
the ``rod_slo_*`` metric families (:func:`record_slo_metrics`), the
``slo.*`` snapshot section diffed by ``repro-rod compare``
(direction-aware: budget remaining falling is a regression), and the
``repro-rod slo`` CLI verdict (exit 1 on breach).

:class:`SloWatcher` is the streaming twin — a duck-typed hook a
dynamics controller can feed per-completion observations to and poll
``burning`` to trigger reactive moves before the budget is gone.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .metrics import MetricsRegistry
from .trace import TraceEvent

__all__ = [
    "LatencyObjective",
    "ThroughputObjective",
    "ObjectiveResult",
    "SloReport",
    "SloWatcher",
    "parse_slo_config",
    "load_slo_config",
    "evaluate_slos",
    "record_slo_metrics",
    "render_slo_report",
]

Objective = Union["LatencyObjective", "ThroughputObjective"]


@dataclass(frozen=True)
class LatencyObjective:
    """At least ``target`` of sink tuples within ``threshold_seconds``."""

    name: str
    threshold_seconds: float
    target: float
    window_seconds: float
    max_burn_rate: float = 1.0

    kind = "latency"

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad fraction."""
        return 1.0 - self.target


@dataclass(frozen=True)
class ThroughputObjective:
    """Every full window must emit ``min_tuples_per_second`` or more."""

    name: str
    min_tuples_per_second: float
    window_seconds: float

    kind = "throughput"


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective's verdict over a run.

    ``budget_remaining`` is the unspent fraction of the error budget
    (1.0 = untouched, 0.0 = exhausted or overdrawn); ``attainment`` is
    achieved / required (>= 1.0 means met overall).  Both falling is a
    regression, which is how :mod:`repro.obs.diff` reads them.
    """

    name: str
    kind: str
    ok: bool
    windows: int
    breach_windows: int
    bad_fraction: float
    budget_remaining: float
    worst_burn_rate: float
    attainment: float

    def to_json_obj(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "windows": self.windows,
            "breach_windows": self.breach_windows,
            "bad_fraction": self.bad_fraction,
            "budget_remaining": self.budget_remaining,
            "worst_burn_rate": self.worst_burn_rate,
            "attainment": self.attainment,
        }


@dataclass
class SloReport:
    """All objectives' verdicts for one run."""

    results: List[ObjectiveResult]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def breached(self) -> List[ObjectiveResult]:
        return [result for result in self.results if not result.ok]

    def to_json_obj(self) -> Dict[str, object]:
        """Snapshot section keyed by objective name (``slo.*`` keys)."""
        return {
            "objectives": {
                result.name: result.to_json_obj()
                for result in sorted(self.results, key=lambda r: r.name)
            },
        }


def parse_slo_config(obj: Mapping[str, object]) -> List[Objective]:
    """Validate a config mapping into objective instances."""
    raw = obj.get("objectives")
    if not isinstance(raw, list) or not raw:
        raise ValueError(
            "SLO config needs a non-empty 'objectives' list"
        )
    objectives: List[Objective] = []
    seen = set()
    for index, entry in enumerate(raw):
        if not isinstance(entry, Mapping):
            raise ValueError(f"objectives[{index}] is not an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"objectives[{index}] needs a 'name'")
        if name in seen:
            raise ValueError(f"duplicate objective name {name!r}")
        seen.add(name)
        kind = entry.get("kind")
        window = float(entry.get("window_seconds", 0.0))  # type: ignore[arg-type]
        if not window > 0 or not math.isfinite(window):
            raise ValueError(
                f"objective {name!r}: window_seconds must be finite > 0"
            )
        if kind == "latency":
            threshold = float(entry["threshold_seconds"])  # type: ignore[arg-type]
            target = float(entry["target"])  # type: ignore[arg-type]
            burn = float(entry.get("max_burn_rate", 1.0))  # type: ignore[arg-type]
            if not threshold > 0 or not math.isfinite(threshold):
                raise ValueError(
                    f"objective {name!r}: threshold_seconds must be "
                    "finite > 0"
                )
            if not 0.0 < target < 1.0:
                raise ValueError(
                    f"objective {name!r}: target must be in (0, 1) — "
                    "an error budget of zero is unenforceable"
                )
            if not burn > 0:
                raise ValueError(
                    f"objective {name!r}: max_burn_rate must be > 0"
                )
            objectives.append(LatencyObjective(
                name=name, threshold_seconds=threshold, target=target,
                window_seconds=window, max_burn_rate=burn,
            ))
        elif kind == "throughput":
            rate = float(entry["min_tuples_per_second"])  # type: ignore[arg-type]
            if not rate > 0 or not math.isfinite(rate):
                raise ValueError(
                    f"objective {name!r}: min_tuples_per_second must be "
                    "finite > 0"
                )
            objectives.append(ThroughputObjective(
                name=name, min_tuples_per_second=rate,
                window_seconds=window,
            ))
        else:
            raise ValueError(
                f"objective {name!r}: unknown kind {kind!r} "
                "(expected 'latency' or 'throughput')"
            )
    return objectives


def load_slo_config(path: str) -> List[Objective]:
    """Read and validate an SLO config JSON file."""
    with open(path, encoding="utf-8") as handle:
        obj = json.load(handle)
    if not isinstance(obj, dict):
        raise ValueError(f"{path}: SLO config must be a JSON object")
    return parse_slo_config(obj)


def _sink_samples(
    events: Sequence[TraceEvent],
) -> List[Sequence[float]]:
    """(t, latency, out) per sink completion, in trace order."""
    samples: List[Sequence[float]] = []
    for event in events:
        if event.type != "batch.serviced":
            continue
        f = event.fields
        if f.get("sink") is None or event.t is None:
            continue
        samples.append((
            float(event.t),
            float(f.get("latency", 0.0)),  # type: ignore[arg-type]
            float(f.get("out", 0)),  # type: ignore[arg-type]
        ))
    return samples


def _horizon(events: Sequence[TraceEvent]) -> float:
    for event in events:
        if event.type == "sim.start":
            value = event.fields.get("horizon")
            if value is not None:
                return float(value)  # type: ignore[arg-type]
    last = [float(e.t) for e in events if e.t is not None]
    return max(last) if last else 0.0


def _evaluate_latency(
    objective: LatencyObjective,
    samples: Sequence[Sequence[float]],
) -> ObjectiveResult:
    window = objective.window_seconds
    budget = objective.budget
    totals: Dict[int, float] = {}
    bad: Dict[int, float] = {}
    bad_mass = 0.0
    total_mass = 0.0
    for t, latency, out in samples:
        index = int(t // window)
        totals[index] = totals.get(index, 0.0) + out
        total_mass += out
        if latency > objective.threshold_seconds:
            bad[index] = bad.get(index, 0.0) + out
            bad_mass += out
    worst = 0.0
    breaches = 0
    for index, total in totals.items():
        burn = (bad.get(index, 0.0) / total) / budget
        worst = max(worst, burn)
        if burn > objective.max_burn_rate:
            breaches += 1
    bad_fraction = bad_mass / total_mass if total_mass else 0.0
    remaining = max(0.0, 1.0 - bad_fraction / budget)
    good_fraction = 1.0 - bad_fraction
    return ObjectiveResult(
        name=objective.name,
        kind=objective.kind,
        ok=breaches == 0 and bad_fraction <= budget,
        windows=len(totals),
        breach_windows=breaches,
        bad_fraction=bad_fraction,
        budget_remaining=remaining,
        worst_burn_rate=worst,
        attainment=good_fraction / objective.target,
    )


def _evaluate_throughput(
    objective: ThroughputObjective,
    samples: Sequence[Sequence[float]],
    horizon: float,
) -> ObjectiveResult:
    window = objective.window_seconds
    windows = int(horizon // window)
    if windows == 0:
        # The run is shorter than one window: judge it as a single
        # partial window so short smoke runs still get a verdict.
        windows = 1
        window = horizon if horizon > 0 else window
    counts = [0.0] * windows
    for t, _, out in samples:
        index = int(t // window)
        if index < windows:
            counts[index] += out
        else:
            # Drained output past the horizon counts toward the last
            # full window — it is still delivered work.
            counts[windows - 1] += out
    required = objective.min_tuples_per_second * window
    worst_rate = min(counts) / window if counts else 0.0
    breaches = sum(1 for c in counts if c < required)
    bad_fraction = breaches / windows if windows else 0.0
    attainment = worst_rate / objective.min_tuples_per_second
    return ObjectiveResult(
        name=objective.name,
        kind=objective.kind,
        ok=breaches == 0,
        windows=windows,
        breach_windows=breaches,
        bad_fraction=bad_fraction,
        budget_remaining=max(0.0, 1.0 - bad_fraction),
        worst_burn_rate=bad_fraction,
        attainment=attainment,
    )


def evaluate_slos(
    events: Sequence[TraceEvent],
    objectives: Sequence[Objective],
) -> SloReport:
    """Judge every objective against one trace."""
    samples = _sink_samples(events)
    horizon = _horizon(events)
    results: List[ObjectiveResult] = []
    for objective in objectives:
        if isinstance(objective, LatencyObjective):
            results.append(_evaluate_latency(objective, samples))
        else:
            results.append(
                _evaluate_throughput(objective, samples, horizon)
            )
    return SloReport(results=results)


def record_slo_metrics(
    registry: MetricsRegistry, report: SloReport
) -> None:
    """Surface a report as the ``rod_slo_*`` metric families."""
    remaining = registry.gauge(
        "rod_slo_budget_remaining",
        "fraction of an objective's error budget left",
        ("objective",),
    )
    worst = registry.gauge(
        "rod_slo_worst_burn_rate",
        "worst burn rate observed over an objective's windows",
        ("objective",),
    )
    breaches = registry.counter(
        "rod_slo_breaches_total",
        "windows that burned faster than the objective allows",
        ("objective",),
    )
    for result in report.results:
        remaining.labels(objective=result.name).set(
            result.budget_remaining
        )
        worst.labels(objective=result.name).set(result.worst_burn_rate)
        if result.breach_windows:
            breaches.labels(objective=result.name).inc(
                result.breach_windows
            )


def render_slo_report(report: SloReport) -> str:
    """The ``repro-rod slo`` text verdict table."""
    rows = [("objective", "kind", "verdict", "windows", "breaches",
             "budget left", "worst burn", "attainment")]
    for result in sorted(report.results, key=lambda r: r.name):
        rows.append((
            result.name,
            result.kind,
            "ok" if result.ok else "BREACH",
            str(result.windows),
            str(result.breach_windows),
            f"{result.budget_remaining:.1%}",
            f"{result.worst_burn_rate:.2f}",
            f"{result.attainment:.3f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths).rstrip())
    breached = report.breached
    lines.append(
        f"{len(report.results)} objective(s), {len(breached)} breached"
    )
    return "\n".join(lines)


class SloWatcher:
    """Streaming latency-objective monitor — the controller hook.

    Feed it every sink completion via :meth:`observe`; it maintains the
    current burn-rate window incrementally and exposes ``burning``
    (the most recently *completed* window breached) plus a running
    breach count.  Duck-typed on purpose: a dynamics controller only
    needs ``observe`` and ``burning``, no import of this module.
    """

    def __init__(self, objective: LatencyObjective) -> None:
        self.objective = objective
        self.breaches = 0
        self._window_index: Optional[int] = None
        self._window_total = 0.0
        self._window_bad = 0.0
        self._last_burn = 0.0
        self._last_breached = False

    def observe(self, t: float, latency: float, count: int = 1) -> None:
        """Record one sink completion at simulated time ``t``."""
        index = int(t // self.objective.window_seconds)
        if self._window_index is None:
            self._window_index = index
        elif index != self._window_index:
            self._roll_window()
            self._window_index = index
        self._window_total += count
        if latency > self.objective.threshold_seconds:
            self._window_bad += count

    def _roll_window(self) -> None:
        if self._window_total > 0:
            burn = (
                self._window_bad / self._window_total
            ) / self.objective.budget
            self._last_burn = burn
            self._last_breached = burn > self.objective.max_burn_rate
            if self._last_breached:
                self.breaches += 1
        self._window_total = 0.0
        self._window_bad = 0.0

    @property
    def burning(self) -> bool:
        """True when the last completed window breached its burn rate."""
        return self._last_breached

    @property
    def last_burn_rate(self) -> float:
        """Burn rate of the last completed window (0.0 before any)."""
        return self._last_burn
