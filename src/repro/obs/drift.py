"""Windowed load-drift detection: EWMA level + Page–Hinkley statistic.

The paper's resiliency argument is about *load variations*; this module
makes them first-class observables.  A :class:`PageHinkley` detector
watches one scalar signal (an input's arrival rate, or the cluster's
feasible-volume ratio sampled over time) and raises a detection when the
cumulative deviation from the running mean exceeds a threshold — the
classic Page–Hinkley change test, run two-sided so both load surges and
collapses fire.

Deviations are *relative* (normalised by the running mean), so the same
default thresholds work for a 10 tuples/s feed and a 10k tuples/s feed.
On detection the detector re-anchors its baseline at the current EWMA
level: a sustained step change fires once, and the eventual reversion
fires again in the opposite direction.

The simulator feeds detectors causally — arrival rates straight from
the resolved rate series (one detector per input), the feasible-volume
ratio at every control poll — and emits each detection as a
``drift.detected`` trace event at fault priority, so the detection
timestamp always precedes any same-instant control reaction.  End-of-run
counters surface as ``rod_drift_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .metrics import MetricsRegistry
from .trace import TraceEvent

__all__ = [
    "DriftDetection",
    "PageHinkley",
    "DriftMonitor",
    "drift_snapshot",
    "record_drift_metrics",
]


@dataclass(frozen=True)
class DriftDetection:
    """One threshold crossing of a monitored signal."""

    t: float
    signal: str               # "arrival_rate" | "feasible_volume"
    direction: str            # "up" | "down"
    statistic: float          # Page–Hinkley statistic at crossing
    threshold: float
    observed: float           # raw sample that tripped the detector
    baseline: float           # EWMA level just before the crossing
    input: Optional[int] = None  # input-stream index (arrival signals)


class PageHinkley:
    """Two-sided, mean-relative Page–Hinkley change detector.

    ``delta`` is the slack (minimum relative deviation that accumulates);
    ``threshold`` the cumulative relative deviation that fires; ``alpha``
    the EWMA smoothing for the reported baseline level.  ``min_samples``
    observations must arrive before the first detection may fire.
    """

    def __init__(
        self,
        delta: float = 0.05,
        threshold: float = 0.5,
        alpha: float = 0.3,
        min_samples: int = 4,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.alpha = float(alpha)
        self.min_samples = int(min_samples)
        self._count = 0
        self._mean = 0.0
        self._ewma: Optional[float] = None
        self._up = 0.0
        self._down = 0.0
        #: Statistic and EWMA baseline at the most recent detection.
        self.last_statistic = 0.0
        self.last_baseline = 0.0

    @property
    def ewma(self) -> float:
        return 0.0 if self._ewma is None else self._ewma

    @property
    def statistic(self) -> float:
        return max(self._up, self._down)

    def update(self, value: float) -> Optional[str]:
        """Feed one sample; returns ``"up"``/``"down"`` on detection.

        On detection the running mean re-anchors at the current sample,
        so a sustained new level does not re-fire every step.
        """
        value = float(value)
        ewma_before = value if self._ewma is None else self._ewma
        self._ewma = (
            value if self._ewma is None
            else self.alpha * value + (1.0 - self.alpha) * self._ewma
        )
        if self._count == 0:
            self._count = 1
            self._mean = value
            return None
        reference = self._mean if abs(self._mean) > 1e-12 else 1e-12
        deviation = (value - self._mean) / abs(reference)
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._up = max(0.0, self._up + deviation - self.delta)
        self._down = max(0.0, self._down - deviation - self.delta)
        if self._count < self.min_samples:
            return None
        direction = None
        if self._up > self.threshold:
            direction = "up"
            self.last_statistic = self._up
        elif self._down > self.threshold:
            direction = "down"
            self.last_statistic = self._down
        if direction is not None:
            self.last_baseline = ewma_before
            # Re-anchor at the new level; reversion fires the other way.
            self._count = 1
            self._mean = value
            self._ewma = value
            self._up = 0.0
            self._down = 0.0
        return direction


class DriftMonitor:
    """Named Page–Hinkley detectors over the run's drift signals."""

    def __init__(
        self,
        delta: float = 0.05,
        threshold: float = 0.5,
        alpha: float = 0.3,
        min_samples: int = 4,
    ) -> None:
        self.delta = delta
        self.threshold = threshold
        self.alpha = alpha
        self.min_samples = min_samples
        self._detectors: Dict[str, PageHinkley] = {}
        self.detections: List[DriftDetection] = []

    def _detector(self, key: str) -> PageHinkley:
        detector = self._detectors.get(key)
        if detector is None:
            detector = PageHinkley(
                delta=self.delta, threshold=self.threshold,
                alpha=self.alpha, min_samples=self.min_samples,
            )
            self._detectors[key] = detector
        return detector

    def observe(
        self,
        signal: str,
        t: float,
        value: float,
        input_index: Optional[int] = None,
    ) -> Optional[DriftDetection]:
        key = (
            signal if input_index is None else f"{signal}[{input_index}]"
        )
        detector = self._detector(key)
        direction = detector.update(value)
        if direction is None:
            return None
        detection = DriftDetection(
            t=float(t),
            signal=signal,
            direction=direction,
            statistic=round(detector.last_statistic, 9),
            threshold=detector.threshold,
            observed=float(value),
            baseline=round(detector.last_baseline, 9),
            input=input_index,
        )
        self.detections.append(detection)
        return detection

    def scan_rate_series(
        self, series: np.ndarray, step_seconds: float
    ) -> List[DriftDetection]:
        """Stream the resolved arrival-rate series through per-input
        detectors, returning detections stamped at each step's start.

        The detectors are causal (each verdict uses only rows up to the
        current step); only the trigger *times* are computed up front so
        the engine can enqueue them as timed events.
        """
        found = []
        steps, inputs = series.shape
        for step in range(steps):
            t = step * step_seconds
            for k in range(inputs):
                detection = self.observe(
                    "arrival_rate", t, float(series[step, k]),
                    input_index=k,
                )
                if detection is not None:
                    found.append(detection)
        return found

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-detector end-of-run state for metric export."""
        out = {}
        for key, detector in sorted(self._detectors.items()):
            out[key] = {
                "statistic": detector.statistic,
                "baseline": detector.ewma,
            }
        return out


def drift_snapshot(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Diffable drift summary for ``result.json``."""
    by_signal: Dict[str, int] = {}
    by_direction: Dict[str, int] = {}
    first_t: Optional[float] = None
    for event in events:
        if event.type != "drift.detected":
            continue
        signal = str(event.fields.get("signal"))
        direction = str(event.fields.get("direction"))
        by_signal[signal] = by_signal.get(signal, 0) + 1
        by_direction[direction] = by_direction.get(direction, 0) + 1
        if first_t is None and event.t is not None:
            first_t = float(event.t)
    total = sum(by_signal.values())
    snapshot: Dict[str, object] = {
        "detected": total,
        "by_signal": dict(sorted(by_signal.items())),
        "by_direction": dict(sorted(by_direction.items())),
    }
    if first_t is not None:
        snapshot["first_t"] = first_t
    return snapshot


def record_drift_metrics(
    registry: MetricsRegistry,
    detections: Iterable[DriftDetection],
    summary: Dict[str, Dict[str, float]],
) -> None:
    """Fold drift counters/levels into the metrics registry (post-run)."""
    detections = list(detections)
    if not detections and not summary:
        return
    if detections:
        counter = registry.counter(
            "rod_drift_events_total",
            "drift detections per monitored signal",
            ("signal",),
        )
        for detection in detections:
            counter.labels(signal=detection.signal).inc()
    if summary:
        statistic = registry.gauge(
            "rod_drift_statistic",
            "end-of-run Page-Hinkley statistic per signal",
            ("signal",),
        )
        baseline = registry.gauge(
            "rod_drift_baseline",
            "end-of-run EWMA baseline level per signal",
            ("signal",),
        )
        for key, state in summary.items():
            statistic.labels(signal=key).set(state["statistic"])
            baseline.labels(signal=key).set(state["baseline"])
