"""Tuple arrival processes for the simulator.

Converts rate traces (tuples per second, one value per time step) into
per-step arrival counts, either deterministically (fractional carry, so
long-run counts match the trace exactly) or as a Poisson process modulated
by the trace (a doubly-stochastic process, matching the "event-based
aperiodic nature of stream sources").
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["deterministic_arrivals", "poisson_arrivals", "ArrivalProcess"]


def deterministic_arrivals(
    rates: Sequence[float], step_seconds: float
) -> np.ndarray:
    """Per-step integer arrival counts preserving cumulative volume.

    Carries the fractional remainder forward so ``sum(counts)`` equals the
    integral of the rate trace to within one tuple.
    """
    if step_seconds <= 0:
        raise ValueError("step_seconds must be > 0")
    r = np.asarray(rates, dtype=float)
    if np.any(r < 0):
        raise ValueError("rates must be >= 0")
    cumulative = np.cumsum(r * step_seconds)
    counts = np.diff(np.floor(cumulative + 1e-9), prepend=0.0)
    return counts.astype(int)


def poisson_arrivals(
    rates: Sequence[float],
    step_seconds: float,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Poisson arrival counts with per-step intensity from the trace."""
    if step_seconds <= 0:
        raise ValueError("step_seconds must be > 0")
    r = np.asarray(rates, dtype=float)
    if np.any(r < 0):
        raise ValueError("rates must be >= 0")
    rng = np.random.default_rng(seed)
    return rng.poisson(r * step_seconds)


class ArrivalProcess:
    """Stateful per-source arrival generator used by simulator sources."""

    def __init__(
        self,
        rates: Sequence[float],
        step_seconds: float,
        kind: str = "deterministic",
        seed: Optional[int] = None,
    ) -> None:
        if kind == "deterministic":
            self.counts = deterministic_arrivals(rates, step_seconds)
        elif kind == "poisson":
            self.counts = poisson_arrivals(rates, step_seconds, seed=seed)
        else:
            raise ValueError(f"unknown arrival kind: {kind!r}")
        self.step_seconds = float(step_seconds)

    @property
    def num_steps(self) -> int:
        return int(self.counts.shape[0])

    def steps(self) -> Iterator[tuple]:
        """Yield ``(start_time, count)`` per step, skipping empty steps."""
        for index, count in enumerate(self.counts):
            if count > 0:
                yield index * self.step_seconds, int(count)
