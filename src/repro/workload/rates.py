"""Rate-point and rate-series construction for experiments.

Two jobs:

* sample workload points "all within the ideal feasible set" — the
  Borealis feasibility-probing protocol of Section 7.1 — by mapping
  uniform simplex samples back to physical rate space;
* build multi-input rate *time series* (one trace per input stream) for
  the correlation-based placer and the simulator.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.load_model import LoadModel
from ..core.volume import qmc
from .traces import TRACE_KINDS, make_trace

__all__ = [
    "ideal_rate_points",
    "scale_point_to_utilization",
    "rate_series",
]


def ideal_rate_points(
    model: LoadModel,
    capacities: Sequence[float],
    count: int,
    seed: Optional[int] = None,
    method: str = "random",
) -> np.ndarray:
    """Sample ``count`` rate points uniformly inside the ideal feasible set.

    The normalized ideal set is the unit simplex; a simplex sample ``x``
    maps back to rates ``r_k = x_k * C_T / l_k``.  Variables with zero
    total load coefficient are unconstrained by the ideal hyperplane; they
    get rate 0 (they contribute no load anyway).
    """
    totals = model.column_totals()
    c_t = float(np.sum(np.asarray(capacities, dtype=float)))
    points = qmc.sample_unit_simplex(
        count, model.num_variables, method=method, seed=seed
    )
    safe = np.where(totals > 1e-12, totals, np.inf)
    return points * (c_t / safe)


def scale_point_to_utilization(
    model: LoadModel,
    capacities: Sequence[float],
    direction: Sequence[float],
    utilization: float,
) -> np.ndarray:
    """Scale a rate direction so aggregate demand hits a target fraction.

    Returns ``s * direction`` with ``s`` chosen so total load equals
    ``utilization * C_T``.  Useful for placing workloads at a controlled
    distance from the ideal hyperplane.
    """
    if utilization <= 0:
        raise ValueError("utilization must be > 0")
    d = np.asarray(direction, dtype=float)
    if np.any(d < 0) or not np.any(d > 0):
        raise ValueError("direction must be non-negative and non-zero")
    totals = model.column_totals()
    demand = float(totals @ d)
    if demand <= 0:
        raise ValueError("direction generates no load")
    c_t = float(np.sum(np.asarray(capacities, dtype=float)))
    return d * (utilization * c_t / demand)


def rate_series(
    num_inputs: int,
    steps: int,
    mean_rates: Optional[Sequence[float]] = None,
    kinds: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """A ``(steps, num_inputs)`` matrix of per-input rate traces.

    Each input stream gets its own independent trace; kinds cycle through
    the paper's three archetypes by default.
    """
    if num_inputs < 1:
        raise ValueError("need at least one input")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    means = (
        np.ones(num_inputs)
        if mean_rates is None
        else np.asarray(mean_rates, dtype=float)
    )
    if means.shape != (num_inputs,):
        raise ValueError(
            f"mean_rates shape {means.shape} does not match d={num_inputs}"
        )
    if np.any(means <= 0):
        raise ValueError("mean rates must be > 0")
    if kinds is None:
        kinds = [TRACE_KINDS[k % len(TRACE_KINDS)] for k in range(num_inputs)]
    if len(kinds) != num_inputs:
        raise ValueError(f"expected {num_inputs} trace kinds, got {len(kinds)}")
    base_seed = 0 if seed is None else seed
    columns = [
        make_trace(kind, steps, mean_rate=float(means[k]),
                   seed=base_seed * 1000 + k)
        for k, kind in enumerate(kinds)
    ]
    return np.column_stack(columns)
