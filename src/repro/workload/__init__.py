"""Bursty workload generation: traces, rate points, arrival processes."""

from .arrivals import ArrivalProcess, deterministic_arrivals, poisson_arrivals
from .rates import ideal_rate_points, rate_series, scale_point_to_utilization
from .scenarios import burst_series, shift_series, steady_trace_series
from .textplot import area_chart, sparkline
from .traces import (
    TRACE_KINDS,
    b_model_trace,
    flash_crowd_trace,
    hurst_exponent,
    load_trace_csv,
    make_trace,
    normalize_trace,
    pareto_on_off_trace,
    rebin_trace,
    save_trace_csv,
    trace_statistics,
)

__all__ = [
    "ArrivalProcess",
    "TRACE_KINDS",
    "area_chart",
    "b_model_trace",
    "burst_series",
    "deterministic_arrivals",
    "flash_crowd_trace",
    "hurst_exponent",
    "ideal_rate_points",
    "load_trace_csv",
    "make_trace",
    "normalize_trace",
    "pareto_on_off_trace",
    "poisson_arrivals",
    "rate_series",
    "rebin_trace",
    "save_trace_csv",
    "scale_point_to_utilization",
    "shift_series",
    "sparkline",
    "steady_trace_series",
    "trace_statistics",
]
