"""Prepackaged workload scenarios for experiments and examples.

The evaluation keeps staging the same three situations — steady traces
at a target mean utilization, a short burst, a sustained shift.  These
builders produce the ``(steps, num_inputs)`` rate matrices for them so
experiments share one implementation (and its tests).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.load_model import LoadModel
from .rates import rate_series, scale_point_to_utilization

__all__ = ["steady_trace_series", "burst_series", "shift_series"]


def steady_trace_series(
    model: LoadModel,
    capacities: Sequence[float],
    steps: int,
    utilization: float,
    seed: Optional[int] = None,
    kinds: Optional[Sequence[str]] = None,
) -> np.ndarray:
    """Bursty per-input traces whose *mean* demand hits ``utilization``.

    Each input gets an independent self-similar trace; the whole matrix
    is scaled so the average rates consume ``utilization`` of the total
    cluster capacity.
    """
    series = rate_series(
        model.num_inputs, steps, seed=seed, kinds=kinds
    )
    means = series.mean(axis=0)
    target = scale_point_to_utilization(
        model, capacities, means, utilization
    )
    return series * (target / means)


def _constant_series(
    model: LoadModel,
    capacities: Sequence[float],
    steps: int,
    mix: Sequence[float],
    utilization: float,
) -> np.ndarray:
    point = scale_point_to_utilization(
        model, capacities, list(mix), utilization
    )
    return np.tile(point, (steps, 1))


def burst_series(
    model: LoadModel,
    capacities: Sequence[float],
    steps: int,
    base_mix: Sequence[float],
    burst_mix: Sequence[float],
    base_utilization: float,
    burst_utilization: float,
    burst_start: Optional[int] = None,
    burst_steps: Optional[int] = None,
) -> np.ndarray:
    """Constant base workload with a temporary flip to a burst mix.

    Defaults: the burst begins a third of the way in and lasts a tenth
    of the horizon — a short-term variation in the paper's sense.
    """
    if steps < 2:
        raise ValueError("need at least two steps")
    series = _constant_series(
        model, capacities, steps, base_mix, base_utilization
    )
    start = steps // 3 if burst_start is None else burst_start
    length = max(1, steps // 10) if burst_steps is None else burst_steps
    if not 0 <= start < steps:
        raise ValueError(f"burst_start {start} outside [0, {steps})")
    burst = _constant_series(
        model, capacities, 1, burst_mix, burst_utilization
    )[0]
    series[start:min(start + length, steps)] = burst
    return series


def shift_series(
    model: LoadModel,
    capacities: Sequence[float],
    steps: int,
    base_mix: Sequence[float],
    shifted_mix: Sequence[float],
    base_utilization: float,
    shifted_utilization: float,
    shift_at: Optional[int] = None,
) -> np.ndarray:
    """Constant base workload that permanently flips to a new mix.

    Default: the shift lands a sixth of the way in — a medium/long-term
    variation (market close, flash crowd onset) in the paper's sense.
    """
    if steps < 2:
        raise ValueError("need at least two steps")
    series = _constant_series(
        model, capacities, steps, base_mix, base_utilization
    )
    at = steps // 6 if shift_at is None else shift_at
    if not 0 <= at < steps:
        raise ValueError(f"shift_at {at} outside [0, {steps})")
    series[at:] = _constant_series(
        model, capacities, 1, shifted_mix, shifted_utilization
    )[0]
    return series
