"""Synthetic bursty rate traces (the Figure 2 substitute).

The paper drives its experiments with three traces from the Internet
Traffic Archive: a wide-area packet trace (PKT), a TCP connection trace
(TCP) and an HTTP request trace (HTTP), all exhibiting large short-term
variation and self-similarity "at all time-scales".  Those traces are not
redistributable here, so this module generates synthetic equivalents that
match the properties the experiments actually exercise:

* **PKT-like** — superposition of ON/OFF sources with heavy-tailed
  (Pareto) sojourn times, the classical construction of self-similar
  network traffic (Hurst parameter ≈ 0.5 + (3 - α) / 2);
* **TCP-like** — a b-model (biased binary multiplicative cascade), which
  reproduces burstiness across every time scale;
* **HTTP-like** — a Poisson request baseline modulated by a diurnal cycle
  plus random flash-crowd events with exponential decay.

:func:`hurst_exponent` (rescaled-range analysis) lets tests verify the
self-similarity claim quantitatively.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "pareto_on_off_trace",
    "b_model_trace",
    "flash_crowd_trace",
    "make_trace",
    "normalize_trace",
    "trace_statistics",
    "hurst_exponent",
    "load_trace_csv",
    "save_trace_csv",
    "rebin_trace",
    "TRACE_KINDS",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def pareto_on_off_trace(
    steps: int,
    sources: int = 32,
    alpha: float = 1.4,
    mean_rate: float = 100.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """PKT-like trace: aggregated heavy-tailed ON/OFF sources.

    Each source alternates between an ON state emitting at a constant rate
    and a silent OFF state; sojourn times are Pareto(``alpha``) distributed
    (1 < alpha < 2 yields long-range dependence).  The aggregate is scaled
    to ``mean_rate``.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if sources < 1:
        raise ValueError("sources must be >= 1")
    if not 1.0 < alpha < 2.0:
        raise ValueError(f"alpha must be in (1, 2) for self-similarity, got {alpha}")
    if mean_rate <= 0:
        raise ValueError("mean_rate must be > 0")
    rng = _rng(seed)
    counts = np.zeros(steps)
    for _ in range(sources):
        t = 0
        # Start each source in a random phase.
        on = bool(rng.integers(0, 2))
        while t < steps:
            duration = int(math.ceil(rng.pareto(alpha) + 1.0))
            end = min(t + duration, steps)
            if on:
                counts[t:end] += 1.0
            t = end
            on = not on
    mean = counts.mean()
    if mean <= 0:
        # Degenerate (all sources silent): fall back to a flat trace.
        return np.full(steps, mean_rate)
    return counts * (mean_rate / mean)


def b_model_trace(
    steps: int,
    bias: float = 0.7,
    mean_rate: float = 100.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """TCP-like trace: biased binary cascade (the "b-model").

    Total volume is split recursively between the two halves of the
    interval in proportions ``bias : 1 - bias`` (side chosen at random per
    split), producing bursts at every time scale.  ``bias = 0.5`` gives a
    flat trace; values toward 1 give extreme burstiness.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if not 0.5 <= bias < 1.0:
        raise ValueError(f"bias must be in [0.5, 1), got {bias}")
    if mean_rate <= 0:
        raise ValueError("mean_rate must be > 0")
    rng = _rng(seed)
    levels = max(1, math.ceil(math.log2(steps)))
    size = 2 ** levels
    trace = np.array([float(size) * mean_rate])
    for _ in range(levels):
        left = np.where(rng.random(trace.shape[0]) < 0.5, bias, 1.0 - bias)
        trace = np.column_stack([trace * left, trace * (1.0 - left)]).ravel()
    trace = trace[:steps]
    mean = trace.mean()
    return trace * (mean_rate / mean) if mean > 0 else np.full(steps, mean_rate)


def flash_crowd_trace(
    steps: int,
    mean_rate: float = 100.0,
    daily_period: int = 288,
    diurnal_amplitude: float = 0.4,
    flash_probability: float = 0.01,
    flash_magnitude: float = 6.0,
    flash_decay: float = 0.9,
    noise: float = 0.15,
    seed: Optional[int] = None,
) -> np.ndarray:
    """HTTP-like trace: diurnal baseline plus random flash crowds.

    Models the paper's medium/long-term variation examples (flash crowds
    reacting to breaking news, daily cycles) over a bursty noise floor.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if mean_rate <= 0:
        raise ValueError("mean_rate must be > 0")
    if not 0 <= diurnal_amplitude < 1:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    if not 0 <= flash_probability <= 1:
        raise ValueError("flash_probability must be in [0, 1]")
    if not 0 < flash_decay < 1:
        raise ValueError("flash_decay must be in (0, 1)")
    rng = _rng(seed)
    t = np.arange(steps)
    baseline = 1.0 + diurnal_amplitude * np.sin(2 * math.pi * t / daily_period)
    flash = np.zeros(steps)
    level = 0.0
    for i in range(steps):
        if rng.random() < flash_probability:
            level += flash_magnitude * rng.random()
        flash[i] = level
        level *= flash_decay
    jitter = rng.gamma(shape=1.0 / max(noise, 1e-6) ** 2,
                       scale=max(noise, 1e-6) ** 2,
                       size=steps)
    trace = baseline * (1.0 + flash) * jitter
    return trace * (mean_rate / trace.mean())


TRACE_KINDS = ("pkt", "tcp", "http")


def make_trace(
    kind: str,
    steps: int,
    mean_rate: float = 100.0,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Dispatch on the paper's three trace archetypes."""
    if kind == "pkt":
        return pareto_on_off_trace(steps, mean_rate=mean_rate, seed=seed)
    if kind == "tcp":
        return b_model_trace(steps, mean_rate=mean_rate, seed=seed)
    if kind == "http":
        return flash_crowd_trace(steps, mean_rate=mean_rate, seed=seed)
    raise ValueError(f"unknown trace kind {kind!r}; expected one of {TRACE_KINDS}")


def normalize_trace(trace: Sequence[float]) -> np.ndarray:
    """Scale a trace to unit mean — how Figure 2 plots rates."""
    t = np.asarray(trace, dtype=float)
    if t.size == 0:
        raise ValueError("empty trace")
    mean = t.mean()
    if mean <= 0:
        raise ValueError("trace mean must be > 0 to normalize")
    return t / mean


def trace_statistics(trace: Sequence[float]) -> dict:
    """Mean, std of the normalized trace, peak-to-mean ratio, Hurst."""
    t = np.asarray(trace, dtype=float)
    normalized = normalize_trace(t)
    return {
        "mean": float(t.mean()),
        "normalized_std": float(normalized.std()),
        "peak_to_mean": float(normalized.max()),
        "hurst": hurst_exponent(t),
    }


def load_trace_csv(
    path: str,
    column: int = 0,
    delimiter: str = ",",
    skip_header: int = 0,
) -> np.ndarray:
    """Load a rate trace from a CSV/TSV file (one value per time step).

    Lets users substitute *real* traces (e.g. the Internet Traffic
    Archive files the paper used) for the synthetic generators: export
    per-interval counts to CSV and every experiment accepts the result
    wherever a trace array is expected.
    """
    data = np.genfromtxt(
        path, delimiter=delimiter, skip_header=skip_header, dtype=float
    )
    if data.ndim == 0:
        data = data.reshape(1)
    if data.ndim == 2:
        if not 0 <= column < data.shape[1]:
            raise ValueError(
                f"column {column} out of range for {data.shape[1]}-column "
                "file"
            )
        data = data[:, column]
    elif column != 0:
        raise ValueError("file has a single column; column must be 0")
    if data.size == 0 or np.any(~np.isfinite(data)):
        raise ValueError(f"{path}: trace must be non-empty and finite")
    if np.any(data < 0):
        raise ValueError(f"{path}: rates must be >= 0")
    return data


def save_trace_csv(trace: Sequence[float], path: str) -> None:
    """Write a trace as a single-column CSV."""
    t = np.asarray(trace, dtype=float)
    np.savetxt(path, t, fmt="%.10g")


def rebin_trace(trace: Sequence[float], factor: int) -> np.ndarray:
    """Coarsen a trace by averaging ``factor`` consecutive steps.

    Self-similar traffic stays bursty under rebinning (Figure 2's
    "similar behaviour is observed at other time-scales"); Poisson-like
    traffic smooths out — :func:`hurst_exponent` before/after makes the
    distinction measurable.  A trailing partial bin is dropped.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    t = np.asarray(trace, dtype=float)
    if t.size < factor:
        raise ValueError(
            f"trace of {t.size} steps cannot be rebinned by {factor}"
        )
    usable = (t.size // factor) * factor
    return t[:usable].reshape(-1, factor).mean(axis=1)


def hurst_exponent(trace: Sequence[float], min_chunk: int = 8) -> float:
    """Rescaled-range (R/S) estimate of the Hurst exponent.

    H ≈ 0.5 for short-range-dependent traffic; self-similar traces sit
    noticeably above (the paper's traces are known to have H ≈ 0.7–0.9).
    """
    t = np.asarray(trace, dtype=float)
    if t.size < 4 * min_chunk:
        raise ValueError(
            f"trace too short for R/S analysis: {t.size} < {4 * min_chunk}"
        )
    sizes = []
    size = min_chunk
    while size <= t.size // 4:
        sizes.append(size)
        size *= 2
    log_sizes, log_rs = [], []
    for size in sizes:
        chunks = t[: (t.size // size) * size].reshape(-1, size)
        rs_values = []
        for chunk in chunks:
            deviations = np.cumsum(chunk - chunk.mean())
            r = deviations.max() - deviations.min()
            s = chunk.std()
            if s > 1e-12 and r > 0:
                rs_values.append(r / s)
        if rs_values:
            log_sizes.append(math.log(size))
            log_rs.append(math.log(float(np.mean(rs_values))))
    if len(log_sizes) < 2:
        return 0.5
    slope = np.polyfit(log_sizes, log_rs, 1)[0]
    return float(min(max(slope, 0.0), 1.0))
