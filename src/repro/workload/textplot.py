"""Terminal plots for traces and latency series.

Everything in this reproduction reports through the terminal, so the
Figure-2-style visuals do too: block-character sparklines and simple
multi-row area charts, no plotting dependency required.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["sparkline", "area_chart"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line block-character plot of a series.

    ``width`` resamples the series by averaging equal chunks; defaults
    to one character per value.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("cannot plot an empty series")
    if not np.all(np.isfinite(v)):
        raise ValueError("series must be finite")
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array([
            v[a:b].mean() if b > a else v[min(a, v.size - 1)]
            for a, b in zip(edges[:-1], edges[1:])
        ])
    low, high = float(v.min()), float(v.max())
    if high - low < 1e-15:
        return _BLOCKS[1] * v.size
    scaled = (v - low) / (high - low) * (len(_BLOCKS) - 2)
    return "".join(_BLOCKS[1 + int(round(s))] for s in scaled)


def area_chart(
    values: Sequence[float],
    width: int = 60,
    height: int = 8,
    label: str = "",
) -> str:
    """Multi-row filled chart with a max/mean annotation."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("cannot plot an empty series")
    if width < 1 or height < 1:
        raise ValueError("width and height must be >= 1")
    edges = np.linspace(0, v.size, width + 1).astype(int)
    sampled = np.array([
        v[a:b].mean() if b > a else v[min(a, v.size - 1)]
        for a, b in zip(edges[:-1], edges[1:])
    ])
    top = float(sampled.max())
    if top <= 0:
        top = 1.0
    rows = []
    levels = np.ceil(sampled / top * height).astype(int)
    for row in range(height, 0, -1):
        rows.append(
            "|" + "".join("#" if lv >= row else " " for lv in levels)
        )
    rows.append("+" + "-" * width)
    stats = f"max={v.max():.4g} mean={v.mean():.4g}"
    rows.append(f" {label} {stats}".rstrip())
    return "\n".join(rows)
