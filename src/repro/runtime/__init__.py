"""Functional runtime: execute real queries, measure real statistics.

The logical layer above the load model: build a
:class:`~repro.runtime.program.StreamProgram` of real computations, run
it with the :class:`~repro.runtime.interpreter.Interpreter` to get both
answers and measured selectivities, then lower it with
``program.to_query_graph(measured)`` and place it with ROD.
"""

from .distributed import DistributedInterpreter, DistributedRunResult
from .functional import (
    FnAggregate,
    FnCountWindow,
    FnFilter,
    FnMap,
    FnOperator,
    FnUnion,
    FnWindowJoin,
)
from .interpreter import Interpreter, RunResult, records_from_trace
from .program import StreamProgram
from .records import Record

__all__ = [
    "DistributedInterpreter",
    "DistributedRunResult",
    "FnAggregate",
    "FnCountWindow",
    "FnFilter",
    "FnMap",
    "FnOperator",
    "FnUnion",
    "FnWindowJoin",
    "Interpreter",
    "Record",
    "RunResult",
    "StreamProgram",
    "records_from_trace",
]
