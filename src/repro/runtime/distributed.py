"""Distributed execution of stream programs under a placement.

The bridge between the *logical* runtime and the *physical* placement
layer: execute a :class:`~repro.runtime.program.StreamProgram` as if its
operators were spread across cluster nodes per an ``{operator: node}``
assignment, while tracking the CPU work each node performs (declared
per-tuple costs; per-pair costs for joins) and the tuples crossing the
network.

Two properties this enables — both pinned by tests:

* **semantic transparency** — sink records are *identical* for every
  placement (placement affects performance, never answers);
* **model consistency** — per-node accumulated work matches the linear
  load model's prediction ``L^n · R̄`` for the run's average rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

import numpy as np

from .functional import FnWindowJoin
from .interpreter import Interpreter, RunResult
from .program import StreamProgram

__all__ = ["DistributedRunResult", "DistributedInterpreter"]


@dataclass
class DistributedRunResult:
    """A run's answers plus the physical accounting."""

    result: RunResult
    node_work: np.ndarray
    network_tuples: int
    local_tuples: int

    @property
    def network_fraction(self) -> float:
        total = self.network_tuples + self.local_tuples
        return self.network_tuples / total if total else 0.0


class DistributedInterpreter:
    """Run a program with per-node accounting under an assignment."""

    def __init__(
        self,
        program: StreamProgram,
        assignment: Mapping[str, int],
        num_nodes: int,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        missing = [
            name for name in program.operator_names if name not in assignment
        ]
        if missing:
            raise ValueError(f"assignment is missing operators: {missing}")
        for name, node in assignment.items():
            if name not in program.operator_names:
                raise ValueError(f"assignment names unknown operator {name!r}")
            if not 0 <= int(node) < num_nodes:
                raise ValueError(
                    f"{name}: node {node} out of range for {num_nodes} nodes"
                )
        self.program = program
        self.assignment = {k: int(v) for k, v in assignment.items()}
        self.num_nodes = num_nodes

    def run(
        self, inputs: Mapping[str, Iterable[object]]
    ) -> DistributedRunResult:
        """Execute and account.

        Delegates the actual computation to the single-process
        :class:`~repro.runtime.interpreter.Interpreter` (which is what
        guarantees answers cannot depend on the assignment), then
        derives the physical accounting from the measured per-operator
        traffic.
        """
        program = self.program
        # Snapshot join pair counters to charge per-pair work correctly.
        pairs_before: Dict[str, int] = {}
        for name in program.operator_names:
            op = program.operator(name)
            if isinstance(op, FnWindowJoin):
                pairs_before[name] = op._pairs_examined
        result = Interpreter(program).run(inputs)

        node_work = np.zeros(self.num_nodes)
        for name in program.operator_names:
            op = program.operator(name)
            node = self.assignment[name]
            if isinstance(op, FnWindowJoin):
                pairs = op._pairs_examined - pairs_before[name]
                node_work[node] += op.cost * pairs
            else:
                node_work[node] += op.cost * result.operator_in[name]

        network = 0
        local = 0
        for name in program.operator_names:
            produced = result.operator_out[name]
            if not produced:
                continue
            node = self.assignment[name]
            for consumer, _port in program.consumers_of(
                program.output_of(name)
            ):
                if self.assignment[consumer] == node:
                    local += produced
                else:
                    network += produced
        return DistributedRunResult(
            result=result,
            node_work=node_work,
            network_tuples=network,
            local_tuples=local,
        )
