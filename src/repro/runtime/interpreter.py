"""Single-process interpreter for stream programs.

Executes a :class:`~repro.runtime.program.StreamProgram` over concrete
input records in event-time order, collecting:

* all records reaching each sink stream (the query's answers), and
* per-operator input/output counts — the *measured selectivities* the
  Section 7.1 planning workflow feeds to the load model.

The interpreter is deliberately simple (one process, one pass, no
placement): it answers "what does this query compute, and what are its
true statistics?", while :mod:`repro.simulator` answers "how does the
placed query perform?".
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

from .program import StreamProgram
from .records import Record

__all__ = ["RunResult", "Interpreter"]


@dataclass
class RunResult:
    """Everything one interpreter run produced."""

    sink_records: Dict[str, List[Record]] = field(default_factory=dict)
    tuples_in: Dict[str, int] = field(default_factory=dict)
    operator_in: Dict[str, int] = field(default_factory=dict)
    operator_out: Dict[str, int] = field(default_factory=dict)

    def selectivities(self) -> Dict[str, float]:
        """Measured output/input ratio per operator (1.0 if unseen)."""
        return {
            name: (
                self.operator_out[name] / self.operator_in[name]
                if self.operator_in[name]
                else 1.0
            )
            for name in self.operator_in
        }

    @property
    def total_output(self) -> int:
        return sum(len(records) for records in self.sink_records.values())


class Interpreter:
    """Runs a stream program over record iterators."""

    def __init__(self, program: StreamProgram) -> None:
        self.program = program

    def run(
        self, inputs: Mapping[str, Iterable[Record]]
    ) -> RunResult:
        """Execute over the given per-input record streams.

        Each input iterable must be individually time-ordered; the
        interpreter merges them into one global event-time order (ties
        broken by input declaration order).  Windows flush at end of
        stream.
        """
        program = self.program
        unknown = set(inputs) - set(program.input_names)
        if unknown:
            raise ValueError(f"unknown input streams: {sorted(unknown)}")

        result = RunResult(
            sink_records={s: [] for s in program.sink_streams()},
            tuples_in={name: 0 for name in program.input_names},
            operator_in={name: 0 for name in program.operator_names},
            operator_out={name: 0 for name in program.operator_names},
        )

        def deliver(stream: str, records: List[Record]) -> None:
            """Push records down every consumer, depth-first."""
            if not records:
                return
            consumers = program.consumers_of(stream)
            if not consumers:
                result.sink_records.setdefault(stream, []).extend(records)
                return
            for op_name, port in consumers:
                operator = program.operator(op_name)
                for record in records:
                    result.operator_in[op_name] += 1
                    produced = operator.accept(port, record)
                    result.operator_out[op_name] += len(produced)
                    deliver(program.output_of(op_name), produced)

        # Merge input streams by event time.
        order = {name: i for i, name in enumerate(program.input_names)}

        def keyed(name: str, stream: Iterable[Record]):
            for i, record in enumerate(stream):
                yield (record.time, order[name], i, name, record)

        merged = heapq.merge(
            *(keyed(name, stream) for name, stream in inputs.items())
        )
        for _, _, _, name, record in merged:
            result.tuples_in[name] += 1
            deliver(name, [record])
            # Watermark: let windowed operators downstream release
            # anything the advancing clock has closed.
            for op_name in program.operator_names:
                operator = program.operator(op_name)
                released = operator.observe_time(record.time)
                if released:
                    result.operator_out[op_name] += len(released)
                    deliver(program.output_of(op_name), released)

        # End of stream: flush remaining window state in topology order.
        for op_name in program.operator_names:
            operator = program.operator(op_name)
            released = operator.flush()
            if released:
                result.operator_out[op_name] += len(released)
                deliver(program.output_of(op_name), released)
        return result


def records_from_trace(
    trace, step_seconds: float, make_data, start: float = 0.0
) -> List[Record]:
    """Expand a rate trace into individual records.

    ``make_data(index)`` builds the payload of the ``index``-th record;
    records within a step are spread uniformly across it.  A convenience
    for feeding interpreter runs from :mod:`repro.workload.traces`.
    """
    if step_seconds <= 0:
        raise ValueError("step_seconds must be > 0")
    records = []
    counter = itertools.count()
    carry = 0.0
    for step, rate in enumerate(trace):
        carry += float(rate) * step_seconds
        count = int(carry)
        carry -= count
        for i in range(count):
            t = start + (step + (i + 0.5) / max(count, 1)) * step_seconds
            records.append(Record(time=t, data=make_data(next(counter))))
    return records
