"""Stream programs: logical dataflow of functional operators.

A :class:`StreamProgram` is the *logical* counterpart of a
:class:`~repro.graphs.query_graph.QueryGraph`: the same DAG shape, but
its vertices compute real values.  The bridge to placement is
:meth:`StreamProgram.to_query_graph`, which lowers the program to a load
-model graph using each operator's declared cost and either declared or
*measured* selectivities (the Section 7.1 workflow: run, measure, plan).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..graphs.query_graph import QueryGraph
from .functional import FnOperator

__all__ = ["StreamProgram"]


class StreamProgram:
    """A DAG of functional operators over named streams."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._inputs: List[str] = []
        self._ops: Dict[str, FnOperator] = {}
        self._op_inputs: Dict[str, Tuple[str, ...]] = {}
        self._op_order: List[str] = []
        self._streams: Dict[str, Optional[str]] = {}  # stream -> producer

    # ------------------------------------------------------------------ build

    def add_input(self, name: str) -> str:
        if name in self._streams:
            raise ValueError(f"duplicate stream name: {name!r}")
        self._inputs.append(name)
        self._streams[name] = None
        return name

    def add(self, operator: FnOperator, inputs: Sequence[str]) -> str:
        """Attach a functional operator; returns its output stream name."""
        if operator.name in self._ops:
            raise ValueError(f"duplicate operator name: {operator.name!r}")
        inputs = tuple(inputs)
        if len(inputs) != operator.arity:
            raise ValueError(
                f"{operator.name}: arity {operator.arity} but "
                f"{len(inputs)} inputs given"
            )
        for stream in inputs:
            if stream not in self._streams:
                raise KeyError(f"unknown stream: {stream!r}")
        output = f"{operator.name}.out"
        if output in self._streams:
            raise ValueError(f"duplicate stream name: {output!r}")
        self._ops[operator.name] = operator
        self._op_inputs[operator.name] = inputs
        self._op_order.append(operator.name)
        self._streams[output] = operator.name
        return output

    # ------------------------------------------------------------ inspection

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(self._inputs)

    @property
    def operator_names(self) -> Tuple[str, ...]:
        return tuple(self._op_order)

    def operator(self, name: str) -> FnOperator:
        try:
            return self._ops[name]
        except KeyError:
            raise KeyError(f"unknown operator: {name!r}") from None

    def inputs_of(self, name: str) -> Tuple[str, ...]:
        return self._op_inputs[name]

    def output_of(self, name: str) -> str:
        self.operator(name)
        return f"{name}.out"

    def consumers_of(self, stream: str) -> Tuple[Tuple[str, int], ...]:
        """(operator, port) pairs consuming a stream."""
        if stream not in self._streams:
            raise KeyError(f"unknown stream: {stream!r}")
        found = []
        for name in self._op_order:
            for port, s in enumerate(self._op_inputs[name]):
                if s == stream:
                    found.append((name, port))
        return tuple(found)

    def sink_streams(self) -> Tuple[str, ...]:
        consumed = {
            s for name in self._op_order for s in self._op_inputs[name]
        }
        return tuple(
            s for s in self._streams if s not in consumed
        )

    # -------------------------------------------------------------- lowering

    def to_query_graph(
        self,
        selectivities: Optional[Mapping[str, float]] = None,
    ) -> QueryGraph:
        """Lower to a load-model query graph for placement.

        ``selectivities`` overrides per-operator selectivity (typically
        the measurements an :class:`~repro.runtime.interpreter.Interpreter`
        run produced); operators not listed use their declared or
        internally-measured values.
        """
        selectivities = selectivities or {}
        graph = QueryGraph(name=self.name)
        for input_name in self._inputs:
            graph.add_input(input_name)
        for name in self._op_order:
            fn_op = self._ops[name]
            graph.add_operator(
                fn_op.to_model_operator(selectivities.get(name)),
                list(self._op_inputs[name]),
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"StreamProgram({self.name!r}, inputs={len(self._inputs)}, "
            f"operators={len(self._op_order)})"
        )
