"""Records — the tuples that flow through the functional runtime.

The performance simulator (:mod:`repro.simulator`) moves anonymous tuple
*counts*; the functional runtime executes real queries over real values.
A :class:`Record` is an immutable event-timestamped mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

__all__ = ["Record"]


@dataclass(frozen=True)
class Record:
    """One data tuple: an event time plus named fields."""

    time: float
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not math.isfinite(self.time):
            raise ValueError(f"record time must be finite, got {self.time}")
        object.__setattr__(
            self, "data", MappingProxyType(dict(self.data))
        )

    def with_data(self, **updates: Any) -> "Record":
        """A copy with fields added or replaced."""
        merged = dict(self.data)
        merged.update(updates)
        return Record(time=self.time, data=merged)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"Record(t={self.time:g}, {fields})"
