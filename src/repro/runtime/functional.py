"""Functional operators: real computations over records.

Each functional operator consumes :class:`~repro.runtime.records.Record`
batches per input port and produces output records.  Event time drives
windows: operators may buffer records and release results when they
*observe* time passing (a watermark), plus a final ``flush`` at end of
stream.

Every functional operator also declares which load-model operator it
corresponds to (``to_model_operator``), so a logical program can be
lowered to a :class:`~repro.graphs.query_graph.QueryGraph` for placement
— with selectivities either declared or *measured* from an actual run.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..graphs import operators as model_ops
from .records import Record

__all__ = [
    "FnOperator",
    "FnMap",
    "FnFilter",
    "FnUnion",
    "FnMerge",
    "FnAggregate",
    "FnCountWindow",
    "FnWindowJoin",
]


def _bucket_order(bucket_key):
    """Deterministic window-emission order, robust to mixed group types."""
    index, group = bucket_key
    return (index, repr(group))


class FnOperator:
    """Base functional operator.

    Parameters
    ----------
    name:
        Unique name within a program.
    cost:
        Declared CPU seconds per input tuple (used when lowering to the
        load model; the interpreter itself is not timed).
    """

    arity = 1

    def __init__(self, name: str, cost: float = 1e-4) -> None:
        if not math.isfinite(cost) or cost < 0:
            raise ValueError(f"{name}: cost must be finite >= 0")
        self.name = name
        self.cost = cost

    def accept(self, port: int, record: Record) -> List[Record]:
        """Process one record arriving on ``port``."""
        raise NotImplementedError

    def observe_time(self, now: float) -> List[Record]:
        """Watermark: event time has advanced to ``now``."""
        return []

    def flush(self) -> List[Record]:
        """End of stream: release any buffered results."""
        return []

    def to_model_operator(
        self, selectivity: Optional[float] = None
    ) -> model_ops.Operator:
        """The load-model operator this computation corresponds to."""
        raise NotImplementedError

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.arity:
            raise IndexError(
                f"{self.name}: port {port} out of range (arity {self.arity})"
            )


class FnMap(FnOperator):
    """Per-record transform: ``fn(data) -> data``."""

    def __init__(self, name: str, fn: Callable[[Any], Any],
                 cost: float = 1e-4) -> None:
        super().__init__(name, cost)
        self.fn = fn

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        return [Record(time=record.time, data=self.fn(dict(record.data)))]

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        return model_ops.Map(self.name, cost=self.cost)


class FnFilter(FnOperator):
    """Predicate filter: keeps records where ``predicate(data)``."""

    def __init__(self, name: str, predicate: Callable[[Any], bool],
                 cost: float = 1e-4) -> None:
        super().__init__(name, cost)
        self.predicate = predicate

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        return [record] if self.predicate(dict(record.data)) else []

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        return model_ops.Filter(
            self.name,
            cost=self.cost,
            selectivity=1.0 if selectivity is None else min(selectivity, 1.0),
        )


class FnUnion(FnOperator):
    """Merge several streams, tagging each record with its source port."""

    def __init__(self, name: str, arity: int = 2, cost: float = 5e-5) -> None:
        super().__init__(name, cost)
        if arity < 2:
            raise ValueError(f"{name}: union needs at least two inputs")
        self.arity = arity

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        return [record.with_data(_source=port)]

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        return model_ops.Union(self.name, costs=[self.cost] * self.arity)


class FnMerge(FnOperator):
    """Content-transparent union of partitioned streams.

    Unlike :class:`FnUnion` it does not tag records with their source
    port: the merged stream carries exactly the records the partitioned
    instances produced, bit-identical to what the unsplit operator would
    have emitted.  This is the merge step of elastic data partitioning
    (:func:`repro.elastic.partition_program`), where the source partition
    is an implementation detail that must not leak into results.
    """

    def __init__(self, name: str, arity: int = 2, cost: float = 5e-5) -> None:
        super().__init__(name, cost)
        if arity < 2:
            raise ValueError(f"{name}: merge needs at least two inputs")
        self.arity = arity

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        return [record]

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        return model_ops.Union(self.name, costs=[self.cost] * self.arity)


class FnAggregate(FnOperator):
    """Event-time window aggregate with optional grouping and sliding.

    ``reducer(records) -> data`` is applied to each (window, group) when
    the watermark passes the window's end; the output record carries the
    window end time plus the group key under ``"key"``.

    ``slide`` defaults to ``window`` (tumbling).  A smaller slide gives
    overlapping (hopping) windows: window ``k`` covers
    ``[k * slide, k * slide + window)`` and each record lands in
    ``window / slide`` of them, which the measured selectivity reflects
    automatically when the operator is lowered to the load model.
    """

    def __init__(
        self,
        name: str,
        window: float,
        reducer: Callable[[List[Record]], Any],
        key: Optional[Callable[[Any], Any]] = None,
        cost: float = 2e-4,
        slide: Optional[float] = None,
    ) -> None:
        super().__init__(name, cost)
        if window <= 0:
            raise ValueError(f"{name}: window must be > 0")
        self.window = window
        self.slide = window if slide is None else float(slide)
        if not 0 < self.slide <= self.window:
            raise ValueError(
                f"{name}: slide must be in (0, window], got {self.slide}"
            )
        self.reducer = reducer
        self.key = key
        self._buckets: Dict[Tuple[int, Any], List[Record]] = {}
        self._in_count = 0
        self._out_count = 0

    def _window_indices(self, t: float) -> range:
        """Indices k with k*slide <= t < k*slide + window."""
        last = math.floor(t / self.slide)
        first = math.floor((t - self.window) / self.slide) + 1
        return range(max(first, 0), last + 1)

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        self._in_count += 1
        group = self.key(dict(record.data)) if self.key else None
        for index in self._window_indices(record.time):
            self._buckets.setdefault((index, group), []).append(record)
        return self.observe_time(record.time)

    def _window_end(self, index: int) -> float:
        return index * self.slide + self.window

    def observe_time(self, now: float) -> List[Record]:
        ready = [
            key for key in self._buckets if self._window_end(key[0]) <= now
        ]
        out = []
        for key in sorted(ready, key=_bucket_order):
            out.extend(self._emit(key))
        return out

    def flush(self) -> List[Record]:
        out = []
        for key in sorted(self._buckets, key=_bucket_order):
            out.extend(self._emit(key))
        return out

    def _emit(self, bucket_key: Tuple[int, Any]) -> List[Record]:
        records = self._buckets.pop(bucket_key)
        index, group = bucket_key
        data = dict(self.reducer(records))
        data["key"] = group
        self._out_count += 1
        return [Record(time=self._window_end(index), data=data)]

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        if selectivity is None:
            selectivity = (
                self._out_count / self._in_count if self._in_count else 1.0
            )
        return model_ops.Aggregate(
            self.name, cost=self.cost, selectivity=selectivity
        )


class FnCountWindow(FnOperator):
    """Count-based tumbling window: emit every ``size`` records per group.

    The classic "aggregate every N tuples" operator; its selectivity is
    exactly ``1/size``, which makes it the cleanest functional
    counterpart of the load model's
    :class:`~repro.graphs.operators.Aggregate` (a tumbling window of
    ``k`` tuples has selectivity ``1/k`` — Section 2.2's example).
    """

    def __init__(
        self,
        name: str,
        size: int,
        reducer: Callable[[List[Record]], Any],
        key: Optional[Callable[[Any], Any]] = None,
        cost: float = 2e-4,
    ) -> None:
        super().__init__(name, cost)
        if size < 1:
            raise ValueError(f"{name}: window size must be >= 1")
        self.size = size
        self.reducer = reducer
        self.key = key
        self._groups: Dict[Any, List[Record]] = {}

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        group = self.key(dict(record.data)) if self.key else None
        bucket = self._groups.setdefault(group, [])
        bucket.append(record)
        if len(bucket) < self.size:
            return []
        del self._groups[group]
        data = dict(self.reducer(bucket))
        data["key"] = group
        return [Record(time=bucket[-1].time, data=data)]

    def flush(self) -> List[Record]:
        """Partial windows are dropped at end of stream (strict count
        semantics): an incomplete window never fired in the live system
        either."""
        self._groups.clear()
        return []

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        # Count windows have exact, structural selectivity.
        del selectivity
        return model_ops.Aggregate(
            self.name, cost=self.cost, selectivity=1.0 / self.size
        )


class FnWindowJoin(FnOperator):
    """Symmetric key-equality join within an event-time window.

    Records from the two ports match when their keys are equal and their
    timestamps differ by at most ``window / 2`` — the same semantics as
    the load model's :class:`~repro.graphs.operators.WindowJoin` and the
    simulator's join runtime.  ``merge(left_data, right_data) -> data``
    builds the output record.
    """

    arity = 2

    def __init__(
        self,
        name: str,
        window: float,
        left_key: Callable[[Any], Any],
        right_key: Callable[[Any], Any],
        merge: Callable[[Any, Any], Any],
        cost_per_pair: float = 2e-4,
    ) -> None:
        super().__init__(name, cost_per_pair)
        if window <= 0:
            raise ValueError(f"{name}: window must be > 0")
        self.window = window
        self.keys = (left_key, right_key)
        self.merge = merge
        self._stores: Tuple[List[Record], List[Record]] = ([], [])
        self._pairs_examined = 0
        self._matches = 0

    def _expire(self, now: float, port: int) -> None:
        horizon = now - self.window / 2.0
        store = self._stores[port]
        keep = [r for r in store if r.time > horizon]
        store[:] = keep

    def accept(self, port: int, record: Record) -> List[Record]:
        self._check_port(port)
        other = 1 - port
        self._expire(record.time, other)
        my_key = self.keys[port](dict(record.data))
        out = []
        for candidate in self._stores[other]:
            self._pairs_examined += 1
            other_key = self.keys[other](dict(candidate.data))
            if my_key == other_key:
                self._matches += 1
                left, right = (
                    (record, candidate) if port == 0 else (candidate, record)
                )
                out.append(
                    Record(
                        time=max(record.time, candidate.time),
                        data=self.merge(dict(left.data), dict(right.data)),
                    )
                )
        self._expire(record.time, port)
        self._stores[port].append(record)
        return out

    @property
    def match_selectivity(self) -> float:
        """Measured matches per examined pair (the model's ``s``)."""
        if self._pairs_examined == 0:
            return 1.0
        return self._matches / self._pairs_examined

    def to_model_operator(self, selectivity=None) -> model_ops.Operator:
        # The model's join selectivity is *per pair*.  Interpreter-level
        # output/input ratios have the wrong units for a join, so the
        # passed-in value is ignored in favour of the pair statistics
        # this operator gathered itself.
        del selectivity
        return model_ops.WindowJoin(
            self.name,
            cost_per_pair=self.cost,
            selectivity=max(self.match_selectivity, 1e-9),
            window=self.window,
        )
