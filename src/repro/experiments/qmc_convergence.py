"""QMC methodology check: Halton vs plain Monte Carlo convergence.

Section 7.1 computes feasible-set sizes "using Quasi Monte Carlo
integration".  This artifact justifies that choice within the
reproduction: on instances small enough for *exact* polytope volumes,
it measures the estimation error of Halton-sequence sampling against
pseudo-random sampling across sample counts.

Expected shape: both errors shrink with sample count; Halton's shrinks
faster (≈ N^-1 vs N^-1/2), so every experiment gets more accuracy per
sample from QMC.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.rod import rod_place
from .common import make_model

__all__ = ["run"]


def run(
    sample_counts: Sequence[int] = (256, 1024, 4096, 16384),
    graph_seeds: Sequence[int] = (2, 4, 6, 9, 12),
    num_inputs: int = 3,
    operators_per_tree: int = 6,
    num_nodes: int = 3,
    mc_repeats: int = 5,
) -> List[Dict[str, object]]:
    """One row per sample count with mean |error| for both samplers."""
    capacities = [1.0] * num_nodes
    cases = []
    for seed in graph_seeds:
        model = make_model(num_inputs, operators_per_tree, seed=seed)
        plan = rod_place(model, capacities)
        fs = plan.feasible_set()
        cases.append((fs, fs.exact_volume_ratio()))

    rows: List[Dict[str, object]] = []
    for samples in sample_counts:
        halton_errors, random_errors = [], []
        for fs, exact in cases:
            halton_errors.append(
                abs(fs.volume_ratio(samples=samples, method="halton") - exact)
            )
            for r in range(mc_repeats):
                random_errors.append(
                    abs(
                        fs.volume_ratio(
                            samples=samples, method="random", seed=r
                        )
                        - exact
                    )
                )
        rows.append(
            {
                "samples": samples,
                "halton_mean_abs_error": float(np.mean(halton_errors)),
                "random_mean_abs_error": float(np.mean(random_errors)),
                "halton_advantage": float(
                    np.mean(random_errors) / max(np.mean(halton_errors),
                                                 1e-12)
                ),
            }
        )
    return rows
