"""Node scheduling policy ablation (simulator substrate, DESIGN.md §6).

Feasibility is scheduling-independent — total CPU demand does not depend
on service order — but the *latency distribution* under bursts does.
This ablation replays the same bursty trace through the same ROD
placement under each per-node scheduling policy and reports latency
statistics, verifying:

* identical delivered throughput and utilization across policies (the
  resilience results never depended on the scheduler);
* round-robin flattening the tail that FIFO's head-of-line blocking
  creates, with longest-queue in between.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.rod import rod_place
from ..simulator.engine import Simulator
from ..simulator.scheduling import POLICIES
from ..workload.rates import rate_series, scale_point_to_utilization
from .common import make_model

__all__ = ["run"]


def run(
    policies: Sequence[str] = POLICIES,
    num_inputs: int = 3,
    operators_per_tree: int = 10,
    num_nodes: int = 4,
    utilization: float = 0.8,
    steps: int = 300,
    step_seconds: float = 0.05,
    seed: int = 41,
) -> List[Dict[str, object]]:
    """One row per scheduling policy under the same placement/workload."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes
    placement = rod_place(model, capacities)
    series = rate_series(model.num_inputs, steps, seed=seed + 1)
    means = series.mean(axis=0)
    target = scale_point_to_utilization(
        model, capacities, means, utilization
    )
    series = series * (target / means)

    rows: List[Dict[str, object]] = []
    for policy in policies:
        result = Simulator(
            placement, step_seconds=step_seconds, scheduling=policy
        ).run(rate_series=series)
        rows.append(
            {
                "policy": policy,
                "tuples_out": result.tuples_out,
                "max_node_utilization": result.max_utilization,
                "mean_latency_ms": result.latency.mean() * 1e3,
                "p95_latency_ms": result.latency.percentile(95) * 1e3,
                "max_latency_ms": result.latency.maximum() * 1e3,
            }
        )
    return rows
