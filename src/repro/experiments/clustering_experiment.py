"""Section 6.3's operator clustering (reconstructed experiment).

With non-negligible per-tuple network cost, plain ROD scatters connected
operators and pays heavy send/receive CPU on every crossing arc.  The
clustering preprocessing contracts expensive arcs first, trading a little
balance freedom for much less communication.

This harness sweeps the per-tuple transfer cost (as a multiple of the
median operator cost) and compares plain ROD against the clustering
search, scoring both by the *communication-adjusted* plane distance and
feasible-set ratio.  Expected shape: identical at zero transfer cost;
clustering increasingly ahead as communication gets more expensive, with
fewer inter-node arcs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.clustering import communication_feasible_set, search_clusterings
from ..core.load_model import build_load_model
from ..core.rod import rod_place
from ..graphs.generator import monitoring_graph

__all__ = ["run"]


def run(
    cost_multipliers: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
    num_links: int = 4,
    num_nodes: int = 4,
    samples: int = 4096,
    seed: int = 5,
) -> List[Dict[str, object]]:
    """One row per (transfer cost, strategy)."""
    graph = monitoring_graph(num_links, seed=seed)
    model = build_load_model(graph)
    capacities = [1.0] * num_nodes
    op_costs = [
        op.cost_of_port(p)
        for op in graph.operators()
        for p in range(op.arity)
    ]
    median_cost = float(np.median(op_costs))

    rows: List[Dict[str, object]] = []
    for multiplier in cost_multipliers:
        transfer = multiplier * median_cost
        plain = rod_place(model, capacities)
        strategies = [("rod_plain", plain, None)]
        if transfer > 0:
            search = search_clusterings(model, capacities, transfer)
            strategies.append(
                ("rod_clustered", search.placement, search)
            )
        for name, placement, search in strategies:
            comm_set = communication_feasible_set(placement, transfer)
            rows.append(
                {
                    "transfer_multiplier": multiplier,
                    "strategy": name,
                    "clusters": (
                        search.clustering.num_clusters
                        if search is not None
                        else model.num_operators
                    ),
                    "inter_node_arcs": placement.inter_node_arcs(),
                    "comm_plane_distance": comm_set.plane_distance(),
                    "comm_volume_ratio": comm_set.volume_ratio(
                        samples=samples
                    ),
                }
            )
    return rows
