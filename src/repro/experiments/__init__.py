"""Experiment harnesses — one module per paper table/figure.

================  ==============================================
module            paper artifact
================  ==============================================
fig2_traces       Figure 2 (trace burstiness / self-similarity)
fig9_plane_distance  Figure 9 (volume ratio vs plane distance)
resiliency        Figure 14 (base resiliency results)
optimal_gap       §7.3.1 ROD-vs-optimal ratios
dimensions        Figure 15 (varying the number of inputs)
latency           prototype latency replay (reconstructed)
lower_bound       §6.1 extension (reconstructed)
nonlinear         §6.2 join workloads (reconstructed)
clustering_experiment  §6.3 clustering (reconstructed)
dynamic_migration  §1 static-resilient vs reactive migration (reconstructed)
fault_tolerance   node-crash failover vs static placements (reconstructed)
fidelity          simulator-vs-analytic cross-check
ablations         design-choice ablations (DESIGN.md §6)
================  ==============================================
"""

from . import (
    ablations,
    balance_bound,
    clustering_experiment,
    dimensions,
    dynamic_migration,
    elasticity,
    fault_tolerance,
    fidelity,
    fig2_traces,
    fig9_plane_distance,
    heterogeneous,
    latency,
    linearization_value,
    lower_bound,
    nonlinear,
    optimal_gap,
    partitioning,
    qmc_convergence,
    report,
    resiliency,
    scale_solve,
    scheduling_ablation,
    search_gap,
)
from .common import ALGORITHMS, format_rows

__all__ = [
    "ALGORITHMS",
    "ablations",
    "balance_bound",
    "clustering_experiment",
    "dimensions",
    "dynamic_migration",
    "elasticity",
    "fault_tolerance",
    "fidelity",
    "fig2_traces",
    "fig9_plane_distance",
    "format_rows",
    "heterogeneous",
    "latency",
    "linearization_value",
    "lower_bound",
    "nonlinear",
    "optimal_gap",
    "partitioning",
    "qmc_convergence",
    "report",
    "resiliency",
    "scale_solve",
    "scheduling_ablation",
    "search_gap",
]
