"""What linearization buys for variable selectivities (§6.2, honest cut).

When an operator's selectivity is unknown or varying, its downstream
load cannot be written over the input rates alone.  Section 6.2's cut
makes the downstream subtree its own dimension, so ROD balances it
independently of the realized selectivity.  The tempting shortcut —
"naive" — bakes the *nominal* selectivity in as a constant and keeps the
input-only model.

This experiment builds workloads with a variable-selectivity operator
feeding a downstream subtree, places each both ways, then sweeps the
*realized* selectivity and measures the exact feasible-area ratio (to
the ideal at that selectivity) of both plans.  Reported per realized
selectivity, averaged over workloads, plus each plan's worst case over
the sweep.

Expected shape — deliberately modest, matching what we measured: the
naive plan's profile peaks at the nominal it optimized for and sags
toward the extremes; the linearized plan is flatter, winning on the
*worst case* over the sweep on average.  The decisive argument for
linearization remains correctness (window joins have no constant-
selectivity linear approximation at all — see the nonlinear experiment);
for variable selectivity it buys predictability, not a landslide.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

import numpy as np

from ..core.load_model import build_load_model
from ..core.rod import rod_place
from ..core.volume import polytope
from ..graphs.operators import Delay, VariableSelectivityOp
from ..graphs.query_graph import QueryGraph

__all__ = ["build_workload", "run"]


def build_workload(seed: int, nominal: float = 0.5) -> QueryGraph:
    """Two streams; stream 1 passes a variable-selectivity classifier."""
    rng = random.Random(seed)
    graph = QueryGraph(name=f"varsel-{seed}")
    i1, i2 = graph.add_input("I1"), graph.add_input("I2")
    stream = i1
    for k in range(2):
        stream = graph.add_operator(
            Delay(f"pre{k}", cost=rng.uniform(2e-4, 6e-4),
                  selectivity=1.0),
            [stream],
        )
    stream = graph.add_operator(
        VariableSelectivityOp(
            "classify", cost=1e-4, nominal_selectivity=nominal
        ),
        [stream],
    )
    frontier = [stream]
    for k in range(6):
        parent = frontier[rng.randrange(len(frontier))]
        frontier.append(
            graph.add_operator(
                Delay(f"post{k}", cost=rng.uniform(2e-4, 6e-4),
                      selectivity=rng.uniform(0.7, 1.0)),
                [parent],
            )
        )
    stream = i2
    for k in range(4):
        stream = graph.add_operator(
            Delay(f"other{k}", cost=rng.uniform(2e-4, 6e-4),
                  selectivity=rng.uniform(0.7, 1.0)),
            [stream],
        )
    return graph


def _realized_graph(template: QueryGraph, selectivity: float) -> QueryGraph:
    """The workload with the realized selectivity baked in as constant."""
    graph = QueryGraph(name=f"{template.name}@{selectivity:g}")
    for name in template.input_names:
        graph.add_input(name)
    for name in template.operator_names:
        op = template.operator(name)
        if isinstance(op, VariableSelectivityOp):
            op = Delay(name, cost=op.cost, selectivity=selectivity)
        graph.add_operator(
            op,
            list(template.inputs_of(name)),
            output_name=template.output_of(name).name,
        )
    return graph


def run(
    selectivities: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    nominal: float = 0.5,
    workload_seeds: Sequence[int] = tuple(range(10)),
    num_nodes: int = 3,
) -> List[Dict[str, object]]:
    """Rows per realized selectivity plus a worst-case summary row."""
    for s in selectivities:
        if not 0 < s <= 1:
            raise ValueError("realized selectivities must be in (0, 1]")
    capacities = np.ones(num_nodes)
    per_s: Dict[float, Dict[str, List[float]]] = {
        s: {"linearized": [], "naive": []} for s in selectivities
    }
    worst: Dict[str, List[float]] = {"linearized": [], "naive": []}

    for seed in workload_seeds:
        template = build_workload(seed, nominal=nominal)
        plans = {
            "linearized": rod_place(
                build_load_model(template), capacities
            ).to_mapping(),
            "naive": rod_place(
                build_load_model(_realized_graph(template, nominal)),
                capacities,
            ).to_mapping(),
        }
        track: Dict[str, List[float]] = {"linearized": [], "naive": []}
        for s in selectivities:
            model = build_load_model(_realized_graph(template, s))
            ideal = polytope.simplex_volume(
                capacities.sum() / model.column_totals()
            )
            for label, mapping in plans.items():
                ln = np.zeros((num_nodes, 2))
                for j, name in enumerate(model.operator_names):
                    ln[mapping[name]] += model.coefficients[j]
                ratio = polytope.polytope_volume(ln, capacities) / ideal
                per_s[s][label].append(ratio)
                track[label].append(ratio)
        for label in worst:
            worst[label].append(min(track[label]))

    rows: List[Dict[str, object]] = []
    for s in selectivities:
        rows.append(
            {
                "realized_selectivity": f"{s:g}",
                "linearized_ratio": float(np.mean(per_s[s]["linearized"])),
                "naive_ratio": float(np.mean(per_s[s]["naive"])),
            }
        )
    rows.append(
        {
            "realized_selectivity": "worst-case",
            "linearized_ratio": float(np.mean(worst["linearized"])),
            "naive_ratio": float(np.mean(worst["naive"])),
        }
    )
    return rows
