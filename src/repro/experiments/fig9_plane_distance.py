"""Figure 9 — feasible-set size vs the minimum plane distance ``r``.

The paper generates 1000 random node load coefficient matrices (10 nodes,
3 input streams), plots feasible-set-size / ideal-size against ``r / r*``
and overlays the hypersphere-volume lower bound, observing that both the
upper and lower envelope grow with ``r / r*`` — the justification for the
MMPD heuristic.

``run`` reproduces the scatter; ``binned`` summarizes it as (bin, min,
mean, max, analytic lower bound) rows, which is what the benchmark prints.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import geometry
from ..core.volume import qmc

__all__ = ["run", "binned"]


def _random_weight_matrix(
    n: int, d: int, rng: np.random.Generator
) -> np.ndarray:
    """A random plan's weights: each variable's load split across nodes.

    Column ``k`` of the underlying ``L^n`` is a random share of ``l_k``
    per node (Dirichlet); with homogeneous capacities the weight matrix is
    simply ``n`` times the share matrix.
    """
    shares = rng.dirichlet(np.ones(n), size=d).T  # (n, d), columns sum to 1
    return shares * n


def run(
    count: int = 1000,
    num_nodes: int = 10,
    num_streams: int = 3,
    samples: int = 2048,
    seed: int = 42,
) -> List[Dict[str, object]]:
    """One row per random matrix: ``r_ratio`` and ``volume_ratio``."""
    rng = np.random.default_rng(seed)
    r_ideal = geometry.ideal_plane_distance(num_streams)
    points = qmc.sample_unit_simplex(samples, num_streams, method="halton")
    rows = []
    for index in range(count):
        weights = _random_weight_matrix(num_nodes, num_streams, rng)
        r = geometry.min_plane_distance(weights)
        feasible = np.all(points @ weights.T <= 1.0 + 1e-12, axis=1)
        rows.append(
            {
                "index": index,
                "dimension": num_streams,
                "r_ratio": r / r_ideal,
                "volume_ratio": float(np.mean(feasible)),
            }
        )
    return rows


def binned(
    rows: List[Dict[str, object]], bins: int = 10
) -> List[Dict[str, object]]:
    """Summarize the scatter into ``bins`` intervals of ``r / r*``."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if not rows:
        return []
    dimensions = {row.get("dimension", 3) for row in rows}
    if len(dimensions) != 1:
        raise ValueError(
            "cannot bin rows of mixed dimensionality: "
            f"{sorted(dimensions)}"
        )
    (d,) = dimensions
    r_values = np.array([row["r_ratio"] for row in rows])
    v_values = np.array([row["volume_ratio"] for row in rows])
    edges = np.linspace(0.0, max(1.0, r_values.max()), bins + 1)
    summary = []
    for b in range(bins):
        mask = (r_values >= edges[b]) & (r_values < edges[b + 1])
        if b == bins - 1:
            mask |= r_values == edges[b + 1]
        if not np.any(mask):
            continue
        mid = 0.5 * (edges[b] + edges[b + 1])
        summary.append(
            {
                "r_ratio_bin": f"[{edges[b]:.2f}, {edges[b + 1]:.2f})",
                "count": int(mask.sum()),
                "min_ratio": float(v_values[mask].min()),
                "mean_ratio": float(v_values[mask].mean()),
                "max_ratio": float(v_values[mask].max()),
                "sphere_lower_bound": geometry.hypersphere_volume_fraction(
                    mid, d
                ),
            }
        )
    return summary
