"""Fault tolerance: what a node crash costs each placement strategy.

ROD's pitch is resilience to *load* variations, but the same feasible-
set geometry says something about *node* loss: when a node crashes, its
hyperplane row disappears and the surviving cluster's feasible set is
what is left.  This experiment crashes the busiest node of each static
placement mid-run and measures three things:

* **throughput ratio** — sink tuples produced relative to the same
  placement's fault-free run.  Without failover the crashed node's
  operators strand their queues and the ratio collapses; with a
  :class:`~repro.dynamics.FailoverController` the displaced operators
  are reassigned the instant the crash fires.
* **residual volume ratio** — the surviving sub-cluster's feasible-set
  volume against the intact ideal, measured on the post-run assignment
  (:func:`~repro.dynamics.residual_volume_ratio`).  The ``volume``
  failover policy maximizes exactly this quantity.
* **recovery latency** — simulated seconds from the crash to the first
  batch a displaced operator serves on its new node, read from the
  structured trace.  ``None`` when the work never resumes (no failover).

One row per ``(algorithm, variant)``: algorithms are ROD, expected-rate
LLF, and correlation balancing; variants are ``no_fault``, ``crash``
(no controller), and ``crash_failover`` per failover policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from ..dynamics import FailoverController, residual_volume_ratio
from ..faults import FaultEvent, FaultSchedule
from ..obs import MemorySink, Tracer
from ..placement.correlation import CorrelationPlacer
from ..placement.llf import LLFPlacer
from ..simulator.engine import Simulator
from ..workload.rates import rate_series, scale_point_to_utilization
from .common import make_model

__all__ = ["run"]


def _busiest_node(plan: Placement) -> int:
    """The node carrying the most coefficient mass — the worst crash."""
    model = plan.model
    load = [0.0] * plan.num_nodes
    for j, node in enumerate(plan.assignment):
        load[node] += float(model.coefficients[j].sum())
    return max(range(plan.num_nodes), key=lambda n: (load[n], -n))


def _final_assignment(
    plan: Placement, migrations: Sequence[object]
) -> Dict[str, int]:
    assignment = {
        name: int(node)
        for name, node in zip(plan.model.operator_names, plan.assignment)
    }
    for move in migrations:
        assignment[move.operator] = int(move.target)
    return assignment


def _recovery_latency(
    events: Sequence[object], displaced: Sequence[str]
) -> Optional[float]:
    """Seconds from the crash to a displaced operator's next batch."""
    crash_t: Optional[float] = None
    targets = set(displaced)
    for event in events:
        if (
            event.type == "fault.injected"
            and event.fields.get("kind") == "node.crash"
        ):
            crash_t = float(event.t)
        elif (
            crash_t is not None
            and event.type == "batch.serviced"
            and event.fields.get("operator") in targets
            and float(event.t) >= crash_t
        ):
            return float(event.t) - crash_t
    return None


def _simulate(
    plan: Placement,
    rates: Sequence[float],
    duration: float,
    step_seconds: float,
    faults: Optional[FaultSchedule],
    controller: Optional[FailoverController],
):
    sink = MemorySink()
    result = Simulator(
        plan,
        step_seconds=step_seconds,
        faults=faults,
        controller=controller,
        tracer=Tracer(sink),
    ).run(rates=list(rates), duration=duration)
    return result, sink.events


def run(
    num_inputs: int = 2,
    operators_per_tree: int = 10,
    num_nodes: int = 3,
    duration: float = 30.0,
    step_seconds: float = 0.1,
    utilization: float = 0.6,
    crash_fraction: float = 0.3,
    samples: int = 512,
    seed: int = 23,
) -> List[Dict[str, object]]:
    """One row per (placement algorithm, fault variant)."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes
    rates = scale_point_to_utilization(
        model, capacities, [1.0] * num_inputs, utilization
    )
    series = rate_series(model.num_variables, 128, seed=seed)
    plans = (
        ("rod", rod_place(model, capacities)),
        ("llf", LLFPlacer(rates=rates).place(model, capacities)),
        ("correlation", CorrelationPlacer(series).place(model, capacities)),
    )

    rows: List[Dict[str, object]] = []
    for algorithm, plan in plans:
        victim = _busiest_node(plan)
        displaced = [
            name
            for name, node in zip(model.operator_names, plan.assignment)
            if node == victim
        ]
        crash = FaultSchedule([
            FaultEvent(time=crash_fraction * duration, kind="node.crash",
                       node=victim)
        ])
        variants = (
            ("no_fault", None, None),
            ("crash", crash, None),
            ("crash_failover_volume", crash,
             FailoverController(policy="volume", samples=samples)),
            ("crash_failover_least_loaded", crash,
             FailoverController(policy="least_loaded")),
        )
        baseline_out: Optional[int] = None
        for variant, faults, controller in variants:
            result, events = _simulate(
                plan, rates, duration, step_seconds, faults, controller
            )
            if variant == "no_fault":
                baseline_out = result.tuples_out
            assignment = _final_assignment(plan, result.migrations)
            failed = () if faults is None else (victim,)
            volume = residual_volume_ratio(
                model, capacities, assignment,
                failed_nodes=failed, samples=samples,
            )
            recovery = (
                None if faults is None
                else _recovery_latency(events, displaced)
            )
            rows.append({
                "algorithm": algorithm,
                "variant": variant,
                "crashed_node": victim if faults is not None else None,
                "tuples_out": result.tuples_out,
                "throughput_ratio": (
                    result.tuples_out / baseline_out
                    if baseline_out else 0.0
                ),
                "stranded_tuples": result.stranded_tuples,
                "residual_volume_ratio": volume,
                "recovery_latency_s": recovery,
                "failover_moves": result.migration_count,
            })
    return rows
