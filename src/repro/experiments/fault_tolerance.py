"""Fault tolerance: what a node crash costs each placement strategy.

ROD's pitch is resilience to *load* variations, but the same feasible-
set geometry says something about *node* loss: when a node crashes, its
hyperplane row disappears and the surviving cluster's feasible set is
what is left.  This experiment crashes the busiest node of each static
placement mid-run and measures three things:

* **throughput ratio** — sink tuples produced relative to the same
  placement's fault-free run.  Without failover the crashed node's
  operators strand their queues and the ratio collapses; with a
  :class:`~repro.dynamics.FailoverController` the displaced operators
  are reassigned the instant the crash fires.
* **residual volume ratio** — the surviving sub-cluster's feasible-set
  volume against the intact ideal, measured on the post-run assignment
  (:func:`~repro.dynamics.residual_volume_ratio`).  The ``volume``
  failover policy maximizes exactly this quantity.
* **recovery latency** — simulated seconds from the crash to the first
  batch a displaced operator serves on its new node, read from the
  structured trace.  ``None`` when the work never resumes (no failover).

One row per ``(algorithm, variant)``: algorithms are ROD, expected-rate
LLF, and correlation balancing; variants are ``no_fault``, ``crash``
(no controller), and ``crash_failover`` per failover policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..core.rod import rod_place
from ..dynamics import FailoverController, residual_volume_ratio
from ..faults import FaultEvent, FaultSchedule
from ..obs import MemorySink, Tracer
from ..parallel import parallel_map
from ..placement.correlation import CorrelationPlacer
from ..placement.llf import LLFPlacer
from ..simulator.engine import Simulator
from ..workload.rates import rate_series, scale_point_to_utilization
from .common import make_model

__all__ = ["run"]

_ALGORITHMS = ("rod", "llf", "correlation")
_VARIANTS = (
    "no_fault",
    "crash",
    "crash_failover_volume",
    "crash_failover_least_loaded",
)


def _busiest_node(plan: Placement) -> int:
    """The node carrying the most coefficient mass — the worst crash."""
    model = plan.model
    load = [0.0] * plan.num_nodes
    for j, node in enumerate(plan.assignment):
        load[node] += float(model.coefficients[j].sum())
    return max(range(plan.num_nodes), key=lambda n: (load[n], -n))


def _final_assignment(
    plan: Placement, migrations: Sequence[object]
) -> Dict[str, int]:
    assignment = {
        name: int(node)
        for name, node in zip(plan.model.operator_names, plan.assignment)
    }
    for move in migrations:
        assignment[move.operator] = int(move.target)
    return assignment


def _recovery_latency(
    events: Sequence[object], displaced: Sequence[str]
) -> Optional[float]:
    """Seconds from the crash to a displaced operator's next batch."""
    crash_t: Optional[float] = None
    targets = set(displaced)
    for event in events:
        if (
            event.type == "fault.injected"
            and event.fields.get("kind") == "node.crash"
        ):
            crash_t = float(event.t)
        elif (
            crash_t is not None
            and event.type == "batch.serviced"
            and event.fields.get("operator") in targets
            and float(event.t) >= crash_t
        ):
            return float(event.t) - crash_t
    return None


def _simulate(
    plan: Placement,
    rates: Sequence[float],
    duration: float,
    step_seconds: float,
    faults: Optional[FaultSchedule],
    controller: Optional[FailoverController],
):
    sink = MemorySink()
    result = Simulator(
        plan,
        step_seconds=step_seconds,
        faults=faults,
        controller=controller,
        tracer=Tracer(sink),
    ).run(rates=list(rates), duration=duration)
    return result, sink.events


def _build_plan(
    algorithm: str, params: Dict[str, object]
) -> Tuple[LoadModel, List[float], List[float], Placement]:
    """Rebuild (model, capacities, rates, plan) from scalar parameters.

    Pure in ``params`` so every worker process reconstructs the exact
    same placement — the rebuild is what keeps the per-variant tasks
    picklable without shipping model/plan objects across processes.
    """
    seed = int(params["seed"])  # type: ignore[arg-type]
    num_inputs = int(params["num_inputs"])  # type: ignore[arg-type]
    model = make_model(
        num_inputs, int(params["operators_per_tree"]), seed=seed,  # type: ignore[arg-type]
    )
    capacities = [1.0] * int(params["num_nodes"])  # type: ignore[arg-type]
    rates = scale_point_to_utilization(
        model, capacities, [1.0] * num_inputs, float(params["utilization"]),  # type: ignore[arg-type]
    )
    if algorithm == "rod":
        plan = rod_place(model, capacities)
    elif algorithm == "llf":
        plan = LLFPlacer(rates=rates).place(model, capacities)
    elif algorithm == "correlation":
        series = rate_series(model.num_variables, 128, seed=seed)
        plan = CorrelationPlacer(series).place(model, capacities)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    return model, capacities, list(rates), plan


def _variant_task(task: Tuple[str, str, Dict[str, object]]) -> Dict[str, object]:
    """Run one (algorithm, variant) cell from scratch; picklable unit."""
    algorithm, variant, params = task
    model, capacities, rates, plan = _build_plan(algorithm, params)
    duration = float(params["duration"])  # type: ignore[arg-type]
    samples = int(params["samples"])  # type: ignore[arg-type]
    victim = _busiest_node(plan)
    displaced = [
        name
        for name, node in zip(model.operator_names, plan.assignment)
        if node == victim
    ]
    if variant == "no_fault":
        faults = None
    else:
        faults = FaultSchedule([
            FaultEvent(
                time=float(params["crash_fraction"]) * duration,  # type: ignore[arg-type]
                kind="node.crash",
                node=victim,
            )
        ])
    if variant == "crash_failover_volume":
        controller: Optional[FailoverController] = FailoverController(
            policy="volume", samples=samples
        )
    elif variant == "crash_failover_least_loaded":
        controller = FailoverController(policy="least_loaded")
    else:
        controller = None
    result, events = _simulate(
        plan, rates, duration, float(params["step_seconds"]),  # type: ignore[arg-type]
        faults, controller,
    )
    assignment = _final_assignment(plan, result.migrations)
    failed = () if faults is None else (victim,)
    volume = residual_volume_ratio(
        model, capacities, assignment,
        failed_nodes=failed, samples=samples,
    )
    recovery = (
        None if faults is None else _recovery_latency(events, displaced)
    )
    return {
        "algorithm": algorithm,
        "variant": variant,
        "crashed_node": victim if faults is not None else None,
        "tuples_out": result.tuples_out,
        "stranded_tuples": result.stranded_tuples,
        "residual_volume_ratio": volume,
        "recovery_latency_s": recovery,
        "failover_moves": result.migration_count,
    }


def run(
    num_inputs: int = 2,
    operators_per_tree: int = 10,
    num_nodes: int = 3,
    duration: float = 30.0,
    step_seconds: float = 0.1,
    utilization: float = 0.6,
    crash_fraction: float = 0.3,
    samples: int = 512,
    seed: int = 23,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """One row per (placement algorithm, fault variant).

    ``jobs > 1`` fans the (algorithm, variant) cells out over worker
    processes via :func:`repro.parallel.parallel_map`; every cell is a
    pure function of the scalar parameters, so the rows are identical
    for any ``jobs`` value.
    """
    params: Dict[str, object] = {
        "num_inputs": num_inputs,
        "operators_per_tree": operators_per_tree,
        "num_nodes": num_nodes,
        "duration": duration,
        "step_seconds": step_seconds,
        "utilization": utilization,
        "crash_fraction": crash_fraction,
        "samples": samples,
        "seed": seed,
    }
    tasks = [
        (algorithm, variant, params)
        for algorithm in _ALGORITHMS
        for variant in _VARIANTS
    ]
    raw = parallel_map(_variant_task, tasks, jobs=jobs)
    baselines: Dict[str, int] = {
        str(cell["algorithm"]): int(cell["tuples_out"])  # type: ignore[arg-type]
        for cell in raw
        if cell["variant"] == "no_fault"
    }
    rows: List[Dict[str, object]] = []
    for cell in raw:
        baseline_out = baselines.get(str(cell["algorithm"]), 0)
        rows.append({
            "algorithm": cell["algorithm"],
            "variant": cell["variant"],
            "crashed_node": cell["crashed_node"],
            "tuples_out": cell["tuples_out"],
            "throughput_ratio": (
                int(cell["tuples_out"]) / baseline_out  # type: ignore[arg-type]
                if baseline_out else 0.0
            ),
            "stranded_tuples": cell["stranded_tuples"],
            "residual_volume_ratio": cell["residual_volume_ratio"],
            "recovery_latency_s": cell["recovery_latency_s"],
            "failover_moves": cell["failover_moves"],
        })
    return rows
