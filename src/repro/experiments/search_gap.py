"""How much does pure search buy over greedy ROD? (extension)

At scales where the exhaustive optimum is unreachable (here 100
operators, 10 nodes, 5 streams), simulated annealing over assignments —
scoring candidate plans by QMC volume on a fixed Halton sample — is the
only way to estimate how far ROD's greedy answer sits from what search
can find.

Measured shape (honest): ROD plans in ~2 ms; polishing it with thousands
of Metropolis steps finds essentially nothing (ROD is a strong local
optimum of the volume objective); annealing *from scratch* needs ~3-4
orders of magnitude more time than ROD to match it, and with a large
budget edges past it by a couple of percent.  The paper's greedy is the
right default; search is an offline refinement at best.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..core.rod import rod_place
from ..placement.annealing import AnnealingPlacer
from .common import make_model

__all__ = ["run"]


def run(
    num_inputs: int = 5,
    operators_per_tree: int = 20,
    num_nodes: int = 10,
    budgets: Sequence[Tuple[str, int]] = (
        ("polish", 4000),
        ("scratch-short", 4000),
        ("scratch-long", 40000),
    ),
    samples: int = 8192,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """One row per strategy with volume ratio and planning time."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes

    start = time.perf_counter()
    rod_plan = rod_place(model, capacities)
    rod_seconds = time.perf_counter() - start
    rows: List[Dict[str, object]] = [
        {
            "strategy": "rod",
            "iterations": 0,
            "volume_ratio": rod_plan.volume_ratio(samples=samples),
            "planning_seconds": rod_seconds,
        }
    ]
    for label, iterations in budgets:
        placer = AnnealingPlacer(
            iterations=iterations,
            samples=2048,
            start="rod" if label == "polish" else "random",
            initial_temperature=0.1,
            cooling=0.9998,
            seed=seed + 1,
        )
        start = time.perf_counter()
        plan = placer.place(model, capacities)
        seconds = time.perf_counter() - start
        rows.append(
            {
                "strategy": f"anneal-{label}",
                "iterations": iterations,
                "volume_ratio": plan.volume_ratio(samples=samples),
                "planning_seconds": seconds,
            }
        )
    return rows
