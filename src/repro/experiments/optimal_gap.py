"""Section 7.3.1's optimality check — ROD vs the exhaustive optimum.

"In the simulator, we compared the feasible set size of ROD with the
optimal solution on small query graphs ... on two nodes.  The average
feasible set size ratio of ROD to the optimal is 0.95 and the minimum
ratio is 0.82."

This harness brute-forces the volume-maximizing plan (exact polytope
volumes) on a batch of small random graphs and reports the per-graph and
aggregate ROD/optimal ratios.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.rod import rod_place
from ..placement.optimal import OptimalPlacer
from .common import make_model

__all__ = ["run", "aggregate"]


def run(
    dimensions: Sequence[int] = (2, 3, 4, 5),
    operators_per_tree: int = 3,
    num_nodes: int = 2,
    graphs_per_dimension: int = 3,
    seed: int = 13,
) -> List[Dict[str, object]]:
    """One row per small random graph with ROD/optimal volume ratio."""
    capacities = [1.0] * num_nodes
    rows = []
    for d in dimensions:
        for g in range(graphs_per_dimension):
            model = make_model(d, operators_per_tree, seed=seed + 100 * d + g)
            rod_plan = rod_place(model, capacities)
            optimal_plan = OptimalPlacer(objective="exact").place(
                model, capacities
            )
            rod_volume = rod_plan.feasible_set().exact_volume()
            optimal_volume = optimal_plan.feasible_set().exact_volume()
            ratio = rod_volume / optimal_volume if optimal_volume > 0 else 1.0
            rows.append(
                {
                    "inputs": d,
                    "operators": model.num_operators,
                    "graph": g,
                    "rod_volume": rod_volume,
                    "optimal_volume": optimal_volume,
                    "rod_over_optimal": ratio,
                }
            )
    return rows


def aggregate(rows: List[Dict[str, object]]) -> Dict[str, float]:
    """The two numbers the paper reports: mean and min ratio."""
    ratios = np.array([row["rod_over_optimal"] for row in rows], dtype=float)
    if ratios.size == 0:
        raise ValueError("no rows to aggregate")
    return {
        "mean_ratio": float(ratios.mean()),
        "min_ratio": float(ratios.min()),
    }
