"""Figure 2 — stream rates exhibit significant variation over time.

The paper plots normalized rates of three real traces (wide-area packet
traffic, TCP connections, HTTP requests) and annotates their standard
deviations, noting self-similarity across time-scales.  This harness
generates the synthetic stand-ins and reports the same statistics: the
normalized standard deviation, the peak-to-mean ratio and the estimated
Hurst exponent (all three real traces are known to be self-similar with
H well above 0.5).
"""

from __future__ import annotations

from typing import Dict, List

from ..workload.traces import TRACE_KINDS, make_trace, trace_statistics

__all__ = ["run"]


def run(steps: int = 4096, seed: int = 1) -> List[Dict[str, object]]:
    """One row per trace archetype with its burstiness statistics."""
    rows = []
    for kind in TRACE_KINDS:
        trace = make_trace(kind, steps, mean_rate=100.0, seed=seed)
        stats = trace_statistics(trace)
        rows.append(
            {
                "trace": kind.upper(),
                "steps": steps,
                "normalized_std": stats["normalized_std"],
                "peak_to_mean": stats["peak_to_mean"],
                "hurst": stats["hurst"],
            }
        )
    return rows
