"""Shared plumbing for the experiment harnesses.

Each experiment module exposes ``run(...) -> list[dict]`` returning the
rows of the corresponding paper table/figure, plus uses
:func:`format_rows` so benchmarks and examples print uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..check import check_artifact, check_experiment_config
from ..core.load_model import LoadModel, build_load_model
from ..graphs.generator import RandomGraphConfig, random_tree_graph
from ..obs.metrics import MetricsRegistry
from ..obs.runs import RunManifest, RunWriter, snapshot_from_rows
from ..parallel import parallel_map
from ..placement import (
    ConnectedPlacer,
    CorrelationPlacer,
    LLFPlacer,
    Placer,
    RODPlacer,
    RandomPlacer,
)
from ..workload.rates import rate_series

__all__ = [
    "ALGORITHMS",
    "format_rows",
    "make_model",
    "make_placer",
    "mean_volume_ratio",
    "record_experiment_run",
    "validate_run",
    "volume_ratio_runs",
]

#: Algorithm names in the paper's Figure 14 legend order.
ALGORITHMS = ("rod", "correlation", "llf", "random", "connected")


def make_model(
    num_inputs: int, operators_per_tree: int, seed: int
) -> LoadModel:
    """A random-tree workload model with the paper's parameters."""
    config = RandomGraphConfig(
        num_inputs=num_inputs, operators_per_tree=operators_per_tree
    )
    model = build_load_model(random_tree_graph(config, seed=seed))
    # Gate every harness run on the static verifiers: a malformed model
    # should fail here with a structured diagnostic, not inside NumPy.
    check_artifact(model).raise_if_errors()
    return model


def validate_run(
    model: LoadModel,
    capacities: Sequence[float],
    seed: Optional[int],
    **extras: object,
) -> None:
    """Verify one experiment run's config before constructing plans.

    Raises :class:`repro.check.CheckError` on error-severity findings
    (bad capacities, mismatched rate dimensions, unknown strategy).
    Warnings — e.g. a missing seed — are tolerated here; ``repro-rod
    check --fail-on warning`` makes them fatal in CI.
    """
    config = {"capacities": list(capacities), "seed": seed}
    config.update(extras)
    check_experiment_config(config, model=model).raise_if_errors()


def make_placer(
    name: str,
    model: LoadModel,
    run_seed: int,
    series_steps: int = 128,
) -> Placer:
    """Instantiate one run of a named algorithm.

    Every non-ROD algorithm is randomized per run exactly as in Section
    7.3.1: Random gets a fresh shuffle seed, the balancers get random
    input stream rates, and the correlation scheme gets a random
    stream-rate time series.  ROD is deterministic and rate-oblivious.
    """
    rng = np.random.default_rng(run_seed)
    if name == "rod":
        return RODPlacer()
    if name == "random":
        return RandomPlacer(seed=run_seed)
    if name == "llf":
        return LLFPlacer(rates=rng.uniform(0.1, 1.0, model.num_variables))
    if name == "connected":
        return ConnectedPlacer(rates=rng.uniform(0.1, 1.0, model.num_variables))
    if name == "correlation":
        series = rate_series(
            model.num_variables,
            series_steps,
            mean_rates=rng.uniform(0.5, 1.5, model.num_variables),
            seed=run_seed,
        )
        return CorrelationPlacer(series)
    raise ValueError(f"unknown algorithm: {name!r}")


def _volume_ratio_task(
    task: "tuple[str, LoadModel, tuple, int, int]",
) -> float:
    """One placement run scored by volume ratio (picklable pool task)."""
    name, model, capacities, samples, run_seed = task
    placer = make_placer(name, model, run_seed=run_seed)
    placement = placer.place(model, capacities)
    return float(placement.volume_ratio(samples=samples))


def volume_ratio_runs(
    name: str,
    model: LoadModel,
    capacities: Sequence[float],
    repeats: int = 10,
    samples: int = 4096,
    base_seed: int = 0,
    jobs: int = 1,
) -> np.ndarray:
    """Feasible-set/ideal ratios across randomized runs of an algorithm.

    ROD "does not need to be repeated because it does not depend on the
    input stream rates" — one run suffices; the baselines get fresh
    random rate points / seeds per run, as in Section 7.3.1.

    ``jobs > 1`` fans the runs out over worker processes through
    :mod:`repro.parallel`; each run's seed depends only on ``base_seed``
    and its index, so the result array is identical for every ``jobs``
    value (and to the pre-parallel sequential loop).
    """
    validate_run(model, capacities, seed=base_seed, strategy=name)
    runs = 1 if name == "rod" else repeats
    tasks = [
        (name, model, tuple(capacities), samples, base_seed * 1000 + r)
        for r in range(runs)
    ]
    return np.asarray(parallel_map(_volume_ratio_task, tasks, jobs=jobs))


def mean_volume_ratio(
    name: str,
    model: LoadModel,
    capacities: Sequence[float],
    repeats: int = 10,
    samples: int = 4096,
    base_seed: int = 0,
    jobs: int = 1,
) -> float:
    """Average of :func:`volume_ratio_runs`."""
    return float(
        volume_ratio_runs(
            name, model, capacities,
            repeats=repeats, samples=samples, base_seed=base_seed,
            jobs=jobs,
        ).mean()
    )


def record_experiment_run(
    root: str,
    experiment_id: str,
    rows: Sequence[Dict[str, object]],
    run_id: Optional[str] = None,
    argv: Optional[Sequence[str]] = None,
    registry: Optional[MetricsRegistry] = None,
    config: Optional[Dict[str, object]] = None,
) -> RunManifest:
    """Record one experiment invocation in the run registry.

    The row table becomes the ``result.json`` snapshot (each numeric
    cell is a diffable metric under ``rows.<index>.<column>``), so
    ``repro-rod compare`` can answer "did this change move fig14" the
    same way it gates simulator runs.
    """
    writer = RunWriter(
        root=root,
        kind="experiment",
        run_id=run_id,
        config={"experiment": experiment_id, **(config or {})},
        argv=argv,
        labels={"experiment": experiment_id},
    )
    return writer.finish(
        snapshot=snapshot_from_rows(rows), registry=registry
    )


def format_rows(
    rows: List[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render experiment rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(line[i]) for line in table))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(v.ljust(w) for v, w in zip(line, widths)) for line in table
    )
    return f"{header}\n{rule}\n{body}"
