"""Figure 15 — varying the number of input streams.

Ratio of each competitor's feasible-set size to ROD's, as the number of
input streams (dimensions) grows.  Expected shape: ROD's relative
advantage increases with dimensionality (each extra input brings a
roughly constant relative improvement), with the 2-input case slightly
off-trend because so few operators per node limit every algorithm's
choices.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .common import ALGORITHMS, make_model, mean_volume_ratio

__all__ = ["run"]


def run(
    input_counts: Sequence[int] = (2, 3, 4, 5, 6, 7),
    operators_per_tree: int = 20,
    num_nodes: int = 10,
    repeats: int = 8,
    samples: int = 4096,
    seed: int = 21,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """One row per (number of inputs, algorithm) with ratio to ROD.

    ``jobs`` parallelizes the randomized runs inside each
    :func:`mean_volume_ratio` call; results are identical for any value.
    """
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []
    for d in input_counts:
        model = make_model(d, operators_per_tree, seed=seed + d)
        ratios = {
            name: mean_volume_ratio(
                name,
                model,
                capacities,
                repeats=repeats,
                samples=samples,
                base_seed=seed + 17 * d,
                jobs=jobs,
            )
            for name in ALGORITHMS
        }
        for name in ALGORITHMS:
            if name == "rod":
                continue
            rows.append(
                {
                    "inputs": d,
                    "algorithm": name,
                    "ratio_to_rod": ratios[name] / ratios["rod"],
                    "rod_ratio_to_ideal": ratios["rod"],
                }
            )
    return rows
