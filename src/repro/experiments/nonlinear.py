"""Section 6.2's non-linear workloads (reconstructed experiment).

Window joins make operator load quadratic in the physical input rates, so
the evaluation works directly in *physical* rate space: sample random rate
directions, find (by bisection on the true non-linear load) the scale at
which total demand exactly consumes the cluster, and test each plan's
feasibility at fractions of that scale.  The feasibility predicate maps
physical points into the linearized variable space via the true cut-
stream rates, so join load is modelled exactly.

Expected shape: ROD on the linearized model stays feasible at higher
load fractions than the balancers and random placement, mirroring the
linear results.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.load_model import LoadModel, build_load_model
from ..core.plans import Placement
from ..graphs.generator import join_graph
from .common import ALGORITHMS, make_placer

__all__ = ["run", "saturation_scale"]


def saturation_scale(
    model: LoadModel,
    capacities: Sequence[float],
    direction: np.ndarray,
    tolerance: float = 1e-6,
) -> float:
    """Scale ``s`` with total true load of ``s * direction`` equal to C_T.

    Total load is continuous and strictly increasing in ``s`` (linear plus
    quadratic join terms), so bisection after exponential bracketing
    converges unconditionally.
    """
    direction = np.asarray(direction, dtype=float)
    if np.any(direction < 0) or not np.any(direction > 0):
        raise ValueError("direction must be non-negative and non-zero")
    c_t = float(np.sum(np.asarray(capacities, dtype=float)))
    graph = model.graph

    def demand(s: float) -> float:
        return graph.total_load(s * direction)

    high = 1.0
    while demand(high) < c_t:
        high *= 2.0
        if high > 1e12:
            raise RuntimeError("workload never saturates the cluster")
    low = 0.0
    while high - low > tolerance * max(high, 1.0):
        mid = 0.5 * (low + high)
        if demand(mid) < c_t:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def _feasible_at(placement: Placement, physical_rates: np.ndarray) -> bool:
    point = placement.model.variable_point(physical_rates)
    return placement.feasible_set().is_feasible(point)


def run(
    num_join_pairs: int = 2,
    downstream_per_join: int = 8,
    num_nodes: int = 4,
    directions: int = 30,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.95),
    window: float = 0.02,
    seed: int = 57,
    repeats: int = 5,
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[Dict[str, object]]:
    """One row per algorithm: feasible fraction over (direction, scale).

    As in Figure 14's protocol, the rate-dependent baselines are averaged
    over ``repeats`` runs with fresh random rate points; ROD runs once.
    Also reports the maximum load fraction at which *every* sampled
    direction stayed feasible — the guaranteed burst headroom.
    """
    graph = join_graph(
        num_join_pairs,
        downstream_per_join=downstream_per_join,
        window=window,
        seed=seed,
    )
    model = build_load_model(graph)
    assert model.is_linearized, "join graphs must introduce cut variables"
    capacities = [1.0] * num_nodes
    rng = np.random.default_rng(seed)
    dirs = rng.dirichlet(np.ones(graph.num_inputs), size=directions)
    scales = [saturation_scale(model, capacities, d) for d in dirs]

    def verdict_matrix(placement: Placement) -> np.ndarray:
        verdicts = np.zeros((directions, len(fractions)), dtype=bool)
        for i, (direction, s_max) in enumerate(zip(dirs, scales)):
            for j, fraction in enumerate(fractions):
                verdicts[i, j] = _feasible_at(
                    placement, fraction * s_max * direction
                )
        return verdicts

    rows: List[Dict[str, object]] = []
    for name in algorithms:
        runs = 1 if name == "rod" else repeats
        stacked = []
        for r in range(runs):
            placer = make_placer(name, model, run_seed=seed + 3 + 11 * r)
            stacked.append(verdict_matrix(placer.place(model, capacities)))
        verdicts = np.mean(np.stack(stacked), axis=0)  # per-cell frequency
        per_fraction = verdicts.mean(axis=0)
        guaranteed = 0.0
        for j, fraction in enumerate(fractions):
            if np.all(verdicts[:, j] >= 1.0 - 1e-12):
                guaranteed = fraction
        rows.append(
            {
                "algorithm": name,
                "aux_variables": len(model.linearization.cut_streams),
                "feasible_fraction": float(verdicts.mean()),
                "guaranteed_load_fraction": guaranteed,
                **{
                    f"feasible@{fraction:g}": float(per_fraction[j])
                    for j, fraction in enumerate(fractions)
                },
            }
        )
    return rows
