"""Elastic parallelism vs static placement (§7.3.1, taken to runtime).

Two legs, one per half of the elastic machinery:

* **placement** — a pipeline whose single hot operator exceeds any one
  node's capacity caps every static placer's feasible-volume ratio well
  below 0.5.  :class:`~repro.placement.elastic.ElasticPlacer` splits the
  bottleneck into key-partitioned instances (escalating until the gain
  dries up) and lifts the ratio past the static ceiling — the paper's
  "wider graphs place better" observation made automatic.
* **runtime** — the same pipeline deployed already partitioned, but with
  skewed fractions (uniform hash ranges over a skewed key distribution
  send most tuples to one instance).  A static deployment runs one node
  hot; the :class:`~repro.dynamics.elasticity.ElasticityController`
  detects the imbalance and repartitions key ranges at runtime, evening
  out node utilization without migrating any operator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.load_model import build_load_model, partition_load_model
from ..dynamics import ElasticityController
from ..graphs.operators import Delay
from ..graphs.query_graph import QueryGraph
from ..placement import ElasticPlacer, LLFPlacer, RODPlacer
from ..simulator.engine import Simulator
from ..workload.rates import scale_point_to_utilization

__all__ = ["run", "hot_pipeline"]


def hot_pipeline(hot_cost: float = 3e-3) -> QueryGraph:
    """One hot operator dominating two cheap downstream stages.

    Costs are scaled so feasible tuple rates land in the hundreds per
    second: the volume *ratio* is scale-invariant, but the runtime leg
    needs enough tuples per control period for per-partition load
    measurements to be meaningful.
    """
    graph = QueryGraph()
    graph.add_input("in0")
    graph.add_operator(
        Delay("hot", cost=hot_cost, selectivity=0.8), ["in0"]
    )
    graph.add_operator(
        Delay("mid", cost=hot_cost / 7.5, selectivity=0.5), ["hot.out"]
    )
    graph.add_operator(
        Delay("cool", cost=hot_cost / 15.0, selectivity=1.0),
        ["mid.out"],
    )
    return graph


def run(
    num_nodes: int = 4,
    hot_cost: float = 3e-3,
    target_ratio: float = 0.9,
    skewed_fractions: Sequence[float] = (0.8, 0.2),
    utilization: float = 0.5,
    steps: int = 300,
    step_seconds: float = 0.1,
    samples: int = 2048,
    seed: Optional[int] = 0,
) -> List[Dict[str, object]]:
    """One row per (leg, strategy)."""
    graph = hot_pipeline(hot_cost)
    model = build_load_model(graph)
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []

    # Placement leg: static placers vs the elastic wrapper.
    for name, placer in (
        ("rod", RODPlacer()),
        ("llf", LLFPlacer()),
        (
            "elastic",
            ElasticPlacer(
                target_ratio=target_ratio, samples=samples, seed=seed
            ),
        ),
    ):
        plan = placer.place(model, capacities)
        splits = 0
        if isinstance(placer, ElasticPlacer):
            splits = sum(
                1
                for entry in placer.history
                if entry["action"] == "split" and entry["kept"]
            )
        rows.append(
            {
                "leg": "placement",
                "strategy": name,
                "operators": plan.model.num_operators,
                "ratio_to_ideal": plan.volume_ratio(
                    samples=samples, seed=seed
                ),
                "splits_kept": splits,
            }
        )

    # Runtime leg: a deployed 2-way partition whose uniform hash ranges
    # turned out skewed.  Static runs hot; the controller repartitions.
    part_model = partition_load_model(
        model, "hot", len(skewed_fractions),
        fractions=tuple(skewed_fractions),
    )
    plan = RODPlacer().place(part_model, capacities)
    point = scale_point_to_utilization(
        part_model, capacities, [1.0], utilization
    )
    series = np.tile(np.asarray(point, dtype=float), (steps, 1))
    for name, controller in (
        ("static", None),
        ("elastic", ElasticityController(period=1.0, hot_threshold=1.3)),
    ):
        result = Simulator(
            plan, step_seconds=step_seconds, controller=controller
        ).run(rate_series=series)
        rows.append(
            {
                "leg": "runtime",
                "strategy": name,
                "max_node_utilization": result.max_utilization,
                "p95_latency_ms": result.latency.percentile(95) * 1e3,
                "migrations": result.migration_count,
                "repartitions": (
                    0 if controller is None else len(controller.history)
                ),
            }
        )
    return rows
