"""Static resilient placement vs dynamic migration (Section 1's argument).

The paper motivates ROD by the cost of the alternative: "dealing with
short-term load fluctuations by frequent operator re-distribution is
typically prohibitive" (migration pauses of hundreds of milliseconds,
statistics lag), while conceding that dynamic redistribution "is
suitable for medium-to-long term variations".  This experiment stages
both situations on the simulator:

* **burst** — the workload briefly flips to a rate mix the balancer was
  not tuned for, then flips back;
* **shift** — the mix flips permanently and hard enough to overload the
  mistuned static balancer.

Each scenario compares static ROD, a static LLF balancer tuned to the
pre-shift average, and the same LLF start under two reactive
controllers with state-aware migration costs:

* an **aggressive** one (short period, unsmoothed statistics) that can
  see short bursts — and therefore chases them, paying migration stalls
  that make the burst *worse* than doing nothing, while recovering
  quickly from the sustained shift;
* a **conservative** one (longer period, smoothed statistics) that
  ignores bursts (no better than static there) and recovers from the
  shift more slowly.

Reactivity is a dial with no good setting for bursts: every reactive
configuration loses the burst scenario to plain static placement, which
is the paper's argument for placing resiliently up front.  ROD beats all
of them in both scenarios without moving anything.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


from ..core.rod import rod_place
from ..dynamics import LoadBalancingController, graph_state_tuples
from ..placement.llf import LLFPlacer
from ..simulator.engine import Simulator
from ..workload.rates import scale_point_to_utilization
from ..workload.scenarios import burst_series, shift_series
from .common import make_model

__all__ = ["run"]


def run(
    num_inputs: int = 2,
    operators_per_tree: int = 12,
    num_nodes: int = 3,
    steps: int = 300,
    step_seconds: float = 0.1,
    expected_mix: Sequence[float] = (6.0, 1.0),
    actual_mix: Sequence[float] = (1.0, 6.0),
    burst_utilization: float = 0.95,
    shift_utilization: float = 0.85,
    seed: int = 77,
) -> List[Dict[str, object]]:
    """One row per (scenario, strategy)."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    graph = model.graph
    capacities = [1.0] * num_nodes
    expected = scale_point_to_utilization(
        model, capacities, list(expected_mix), 0.6
    )
    burst = burst_series(
        model, capacities, steps,
        base_mix=expected_mix, burst_mix=actual_mix,
        base_utilization=0.6, burst_utilization=burst_utilization,
        burst_steps=30,
    )
    shift = shift_series(
        model, capacities, steps,
        base_mix=expected_mix, shifted_mix=actual_mix,
        base_utilization=0.6, shifted_utilization=shift_utilization,
    )

    rod_plan = rod_place(model, capacities)
    llf_plan = LLFPlacer(rates=expected).place(model, capacities)
    state = graph_state_tuples(graph, expected)

    def aggressive() -> LoadBalancingController:
        controller = LoadBalancingController(
            period=1.0, cooldown=2.0, state_tuples=state
        )
        controller.smoothing = 1.0  # raw per-period statistics
        return controller

    def conservative() -> LoadBalancingController:
        return LoadBalancingController(
            period=3.0, cooldown=9.0, state_tuples=state
        )

    rows: List[Dict[str, object]] = []
    for scenario, series in (("burst", burst), ("shift", shift)):
        strategies = (
            ("static_rod", rod_plan, None),
            ("static_llf", llf_plan, None),
            ("dynamic_llf_aggressive", llf_plan, aggressive()),
            ("dynamic_llf_conservative", llf_plan, conservative()),
        )
        for name, plan, controller in strategies:
            result = Simulator(
                plan, step_seconds=step_seconds, controller=controller
            ).run(rate_series=series)
            rows.append(
                {
                    "scenario": scenario,
                    "strategy": name,
                    "mean_latency_ms": result.latency.mean() * 1e3,
                    "p95_latency_ms": result.latency.percentile(95) * 1e3,
                    "max_node_utilization": result.max_utilization,
                    "migrations": result.migration_count,
                    "migration_pause_s": result.total_migration_pause,
                }
            )
    return rows
