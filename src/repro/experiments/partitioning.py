"""Data partitioning widens graphs and improves resilience (§7.3.1).

The paper notes that range-based data partitioning "significantly
increase[s] the number of operator instances, thus creating much wider,
larger graphs" — and Figure 14 shows every algorithm, ROD especially,
benefits from more operators.  This experiment closes the loop: take a
*narrow* workload (few heavy operators per stream), partition its
heaviest operators progressively wider, and track the feasible-set
ratio.

Expected shape: ROD's ratio climbs with the partitioning degree (each
heavy, unsplittable load becomes several balanceable pieces) and the
graph's total load grows only by the small routing/merge overhead.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.load_model import build_load_model
from ..core.rod import rod_place
from ..graphs.generator import RandomGraphConfig, random_tree_graph
from ..graphs.partition import parallelize_heaviest
from .common import make_placer

__all__ = ["run"]


def run(
    ways_options: Sequence[int] = (1, 2, 4, 8),
    num_inputs: int = 3,
    operators_per_tree: int = 4,
    num_nodes: int = 6,
    operators_to_split: int = 6,
    samples: int = 4096,
    seed: int = 29,
    algorithms: Sequence[str] = ("rod", "llf"),
) -> List[Dict[str, object]]:
    """One row per (partitioning degree, algorithm)."""
    base = random_tree_graph(
        RandomGraphConfig(
            num_inputs=num_inputs, operators_per_tree=operators_per_tree
        ),
        seed=seed,
    )
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []
    base_load = base.total_load([1.0] * num_inputs)
    for ways in ways_options:
        graph = (
            base
            if ways == 1
            else parallelize_heaviest(
                base, count=operators_to_split, ways=ways
            )
        )
        model = build_load_model(graph)
        overhead = (
            graph.total_load([1.0] * num_inputs) / base_load - 1.0
        )
        for name in algorithms:
            if name == "rod":
                plan = rod_place(model, capacities)
            else:
                plan = make_placer(name, model, run_seed=seed).place(
                    model, capacities
                )
            rows.append(
                {
                    "ways": ways,
                    "algorithm": name,
                    "operators": model.num_operators,
                    "ratio_to_ideal": plan.volume_ratio(samples=samples),
                    "load_overhead": overhead,
                }
            )
    return rows
