"""Simulator-vs-analytic fidelity check (Section 7.3.1 methodology).

The paper validates its simulator by observing that "the simulator
results tracked the results in Borealis very closely".  Our analogue: the
discrete-event simulator's empirical feasibility verdicts and measured
utilizations must track the analytic predicate ``L^n R <= C`` on sampled
workload points.  Disagreements should only appear in a thin band around
the feasibility boundary (batching and warm-up effects).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.rod import rod_place
from ..simulator.feasibility import FeasibilityProbe
from ..workload.rates import ideal_rate_points
from .common import make_model

__all__ = ["run", "run_protocol_comparison"]


def run(
    num_inputs: int = 3,
    operators_per_tree: int = 8,
    num_nodes: int = 4,
    points: int = 40,
    duration: float = 10.0,
    boundary_band: float = 0.05,
    seed: int = 3,
) -> List[Dict[str, object]]:
    """Summary rows: agreement rate and utilization tracking error."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes
    placement = rod_place(model, capacities)
    feasible_set = placement.feasible_set()
    samples = ideal_rate_points(
        model, capacities, points, seed=seed, method="random"
    )
    probe = FeasibilityProbe(duration=duration)

    agreements = 0
    near_boundary_disagreements = 0
    clear_disagreements = 0
    utilization_errors = []
    for i in range(points):
        rates = samples[i]
        predicted_util = float(feasible_set.utilizations(rates).max())
        analytic = predicted_util <= 1.0
        empirical = probe.is_feasible(placement, rates)
        simulator = _measured_max_utilization(placement, rates, probe)
        utilization_errors.append(abs(simulator - predicted_util))
        if analytic == empirical:
            agreements += 1
        elif abs(predicted_util - 1.0) <= boundary_band:
            near_boundary_disagreements += 1
        else:
            clear_disagreements += 1
    return [
        {
            "points": points,
            "agreement_rate": agreements / points,
            "near_boundary_disagreements": near_boundary_disagreements,
            "clear_disagreements": clear_disagreements,
            "mean_utilization_error": float(np.mean(utilization_errors)),
            "max_utilization_error": float(np.max(utilization_errors)),
        }
    ]


def run_protocol_comparison(
    num_inputs: int = 3,
    operators_per_tree: int = 8,
    num_nodes: int = 4,
    points: int = 60,
    duration: float = 8.0,
    seed: int = 9,
) -> List[Dict[str, object]]:
    """The Borealis measurement protocol vs the QMC volume.

    Section 7.1 measures feasible-set size by running the prototype at
    random workload points inside the ideal set and counting how many
    probe feasible.  This harness does exactly that on the simulator for
    ROD and a balancer, next to the analytic QMC ratio — the two columns
    should agree within sampling error, justifying the fast analytic
    path the other experiments use.
    """
    from ..simulator.feasibility import empirical_feasible_fraction
    from .common import make_placer

    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes
    samples = ideal_rate_points(
        model, capacities, points, seed=seed, method="random"
    )
    probe = FeasibilityProbe(duration=duration)
    rows: List[Dict[str, object]] = []
    for name in ("rod", "llf"):
        placement = make_placer(name, model, run_seed=seed).place(
            model, capacities
        )
        empirical = empirical_feasible_fraction(placement, samples, probe)
        analytic = placement.volume_ratio(samples=4096)
        rows.append(
            {
                "algorithm": name,
                "empirical_fraction": empirical,
                "qmc_ratio": analytic,
                "abs_difference": abs(empirical - analytic),
                "probe_points": points,
            }
        )
    return rows


def _measured_max_utilization(placement, rates, probe) -> float:
    from ..simulator.engine import Simulator

    result = Simulator(placement, step_seconds=probe.step_seconds).run(
        rates=rates, duration=probe.duration
    )
    return result.max_utilization
