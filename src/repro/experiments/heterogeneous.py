"""Heterogeneous clusters (reconstructed; §7.1 "unless otherwise stated,
we assume the system has homogeneous nodes").

Theorem 1 already covers heterogeneity: the ideal plan balances every
stream *in proportion to each node's capacity*, and all of ROD's metrics
are capacity-normalized.  This experiment checks that the reproduction's
claims survive skewed clusters:

* ROD still dominates the baselines when capacities differ;
* ROD loads nodes in proportion to their capacities;
* making the cluster more skewed (same total capacity) does not break
  ROD disproportionately compared to the best baseline.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.rod import rod_place
from .common import ALGORITHMS, make_model, make_placer

__all__ = ["run", "CAPACITY_PROFILES"]

#: Capacity profiles with equal totals (6.0) and growing skew.
CAPACITY_PROFILES = {
    "uniform": (1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
    "mild": (1.5, 1.5, 1.0, 1.0, 0.5, 0.5),
    "skewed": (2.5, 1.5, 1.0, 0.5, 0.25, 0.25),
    "one_big": (3.0, 0.6, 0.6, 0.6, 0.6, 0.6),
}


def run(
    num_inputs: int = 4,
    operators_per_tree: int = 20,
    repeats: int = 6,
    samples: int = 4096,
    seed: int = 67,
    profiles: Sequence[str] = tuple(CAPACITY_PROFILES),
) -> List[Dict[str, object]]:
    """One row per (capacity profile, algorithm)."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    rows: List[Dict[str, object]] = []
    for profile in profiles:
        try:
            capacities = np.array(CAPACITY_PROFILES[profile])
        except KeyError:
            raise ValueError(
                f"unknown capacity profile {profile!r}; "
                f"choose from {sorted(CAPACITY_PROFILES)}"
            ) from None
        rod_plan = rod_place(model, capacities)
        loads = rod_plan.node_coefficients().sum(axis=1)
        share_error = float(
            np.abs(
                loads / loads.sum() - capacities / capacities.sum()
            ).max()
        )
        for name in ALGORITHMS:
            if name == "rod":
                ratio = rod_plan.volume_ratio(samples=samples)
            else:
                ratios = []
                for r in range(repeats):
                    placer = make_placer(
                        name, model, run_seed=seed + 31 * r
                    )
                    ratios.append(
                        placer.place(model, capacities).volume_ratio(
                            samples=samples
                        )
                    )
                ratio = float(np.mean(ratios))
            rows.append(
                {
                    "profile": profile,
                    "algorithm": name,
                    "ratio_to_ideal": ratio,
                    "rod_capacity_share_error": share_error,
                }
            )
    return rows
