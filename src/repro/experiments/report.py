"""One-shot reproduction report: every experiment, one markdown file.

``generate()`` runs every harness and renders a single document mirroring
EXPERIMENTS.md's structure with freshly measured numbers.  Two scales:

* ``"quick"`` — minutes-scale parameters for smoke reproduction;
* ``"full"`` — the benchmark-suite parameters the committed numbers use.
"""

from __future__ import annotations

import io
from typing import Callable, List, Sequence, Tuple

from . import (
    ablations,
    balance_bound,
    linearization_value,
    search_gap,
    clustering_experiment,
    dimensions,
    dynamic_migration,
    fidelity,
    fig2_traces,
    fig9_plane_distance,
    heterogeneous,
    latency,
    lower_bound,
    nonlinear,
    optimal_gap,
    partitioning,
    qmc_convergence,
    resiliency,
    scheduling_ablation,
)
from .common import format_rows

__all__ = ["ARTIFACTS", "generate", "write_report"]


def _fig9(scale: str) -> List[dict]:
    count = 200 if scale == "quick" else 1000
    return fig9_plane_distance.binned(
        fig9_plane_distance.run(count=count, samples=1024)
    )


def _fig14(scale: str) -> List[dict]:
    if scale == "quick":
        return resiliency.run(
            operator_counts=(40, 80), repeats=3, graph_repeats=1,
            samples=1024,
        )
    return resiliency.run()


def _optimal(scale: str) -> List[dict]:
    if scale == "quick":
        rows = optimal_gap.run(dimensions=(2, 3), graphs_per_dimension=2)
    else:
        rows = optimal_gap.run()
    rows.append(
        {"inputs": "", "operators": "", "graph": "aggregate",
         **optimal_gap.aggregate(rows)}
    )
    return rows


def _fig15(scale: str) -> List[dict]:
    if scale == "quick":
        return dimensions.run(
            input_counts=(2, 3, 4), operators_per_tree=8, repeats=2,
            samples=1024,
        )
    return dimensions.run()


def _latency(scale: str) -> List[dict]:
    steps = 200 if scale == "quick" else 400
    return latency.run(steps=steps)


def _lower_bound(scale: str) -> List[dict]:
    samples = 1024 if scale == "quick" else 4096
    return lower_bound.run(samples=samples)


def _nonlinear(scale: str) -> List[dict]:
    directions = 10 if scale == "quick" else 30
    repeats = 2 if scale == "quick" else 5
    return nonlinear.run(directions=directions, repeats=repeats)


def _clustering(scale: str) -> List[dict]:
    samples = 1024 if scale == "quick" else 4096
    return clustering_experiment.run(samples=samples)


def _fidelity(scale: str) -> List[dict]:
    points = 10 if scale == "quick" else 40
    return fidelity.run(points=points, duration=5.0)


def _protocol(scale: str) -> List[dict]:
    points = 20 if scale == "quick" else 60
    return fidelity.run_protocol_comparison(points=points, duration=5.0)


def _dynamic(scale: str) -> List[dict]:
    steps = 150 if scale == "quick" else 300
    return dynamic_migration.run(steps=steps)


def _heterogeneous(scale: str) -> List[dict]:
    if scale == "quick":
        return heterogeneous.run(
            operators_per_tree=8, repeats=2, samples=1024,
            profiles=("uniform", "skewed"),
        )
    return heterogeneous.run()


def _partitioning(scale: str) -> List[dict]:
    samples = 1024 if scale == "quick" else 4096
    return partitioning.run(samples=samples)


def _ablations(scale: str) -> List[dict]:
    samples = 1024 if scale == "quick" else 4096
    rows = ablations.run_ordering(samples=samples)
    rows += [
        {"ordering": f"class-one policy: {r['policy']}",
         "volume_ratio": r["volume_ratio"],
         "plane_distance": r["plane_distance"]}
        for r in ablations.run_class_one_policy(samples=samples)
    ]
    return rows


#: (artifact id, title, runner) in the paper's order.
ARTIFACTS: Sequence[Tuple[str, str, Callable[[str], List[dict]]]] = (
    ("fig2", "Figure 2 — trace burstiness and self-similarity",
     lambda s: fig2_traces.run(steps=2048)),
    ("fig9", "Figure 9 — volume ratio vs plane distance", _fig9),
    ("fig14", "Figure 14 — base resiliency results", _fig14),
    ("tab-opt", "§7.3.1 — ROD vs exhaustive optimum", _optimal),
    ("fig15", "Figure 15 — varying the number of inputs", _fig15),
    ("fig-lat", "Latency under bursty replay (reconstructed)", _latency),
    ("fig-lb", "§6.1 lower-bound extension (reconstructed)", _lower_bound),
    ("fig-nl", "§6.2 non-linear join workloads (reconstructed)", _nonlinear),
    ("fig-cl", "§6.3 operator clustering (reconstructed)", _clustering),
    ("fig-dyn", "§1 static resilience vs reactive migration "
                "(reconstructed)", _dynamic),
    ("fig-het", "Heterogeneous clusters (reconstructed)", _heterogeneous),
    ("fig-part", "§7.3.1 data partitioning (reconstructed)", _partitioning),
    ("fig-sim-fid", "Simulator fidelity check", _fidelity),
    ("fig-protocol", "Borealis probing protocol vs QMC", _protocol),
    ("ablations", "Design-choice ablations", _ablations),
    ("balance-bound", "ROD vs exact MILP balance optimum",
     lambda s: balance_bound.run(
         graph_seeds=(3, 5) if s == "quick" else (3, 5, 8),
         samples=1024 if s == "quick" else 4096,
     )),
    ("qmc-convergence", "Halton vs Monte Carlo convergence",
     lambda s: qmc_convergence.run(
         sample_counts=(256, 1024) if s == "quick"
         else (256, 1024, 4096, 16384),
     )),
    ("scheduling", "Node scheduling policy ablation",
     lambda s: scheduling_ablation.run(
         steps=150 if s == "quick" else 300,
     )),
    ("linearization", "§6.2 variable-selectivity linearization value",
     lambda s: linearization_value.run(
         workload_seeds=tuple(range(4 if s == "quick" else 10)),
     )),
    ("search-gap", "Greedy ROD vs direct volume search",
     lambda s: search_gap.run(
         budgets=(("polish", 1000), ("scratch-short", 1000))
         if s == "quick"
         else (("polish", 4000), ("scratch-short", 4000),
               ("scratch-long", 40000)),
     )),
)


def generate(
    scale: str = "quick",
    only: Sequence[str] = (),
) -> str:
    """Run the experiments and return the markdown report."""
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    selected = set(only)
    unknown = selected - {artifact_id for artifact_id, _, _ in ARTIFACTS}
    if unknown:
        raise ValueError(f"unknown artifact ids: {sorted(unknown)}")
    out = io.StringIO()
    out.write(f"# Reproduction report ({scale} scale)\n")
    for artifact_id, title, runner in ARTIFACTS:
        if selected and artifact_id not in selected:
            continue
        out.write(f"\n## {artifact_id} — {title}\n\n")
        rows = runner(scale)
        out.write("```\n")
        out.write(format_rows(rows))
        out.write("\n```\n")
    return out.getvalue()


def write_report(
    path: str, scale: str = "quick", only: Sequence[str] = ()
) -> None:
    """Generate and write the report to ``path``."""
    content = generate(scale=scale, only=only)
    with open(path, "w") as handle:
        handle.write(content)
