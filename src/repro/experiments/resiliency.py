"""Figure 14 — base resiliency results.

Average feasible-set size (relative to the ideal set, and relative to
ROD's) achieved by each algorithm on random query graphs with a growing
number of operators.  Expected shape (Section 7.3.1): ROD on top and
approaching the ideal as operators increase; Correlation-based the best
baseline; Random and LLF in the middle; Connected worst.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .common import ALGORITHMS, make_model, volume_ratio_runs

__all__ = ["run"]

DEFAULT_OPERATOR_COUNTS = (40, 80, 120, 160, 200)


def run(
    operator_counts: Sequence[int] = DEFAULT_OPERATOR_COUNTS,
    num_inputs: int = 5,
    num_nodes: int = 10,
    repeats: int = 10,
    graph_repeats: int = 3,
    samples: int = 4096,
    graph_seed: int = 7,
    algorithms: Sequence[str] = ALGORITHMS,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """One row per (operator count, algorithm).

    ``ratio_to_ideal`` reproduces Figure 14(a); ``ratio_to_rod``
    reproduces Figure 14(b).  Results average over ``graph_repeats``
    independently generated workload graphs per size (and, within each,
    over ``repeats`` randomized runs of the rate-dependent baselines);
    ``std`` is the spread across all of an algorithm's runs.  ``jobs``
    parallelizes the per-algorithm runs (results are identical for any
    value).
    """
    if graph_repeats < 1:
        raise ValueError("graph_repeats must be >= 1")
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []
    for total_ops in operator_counts:
        if total_ops % num_inputs:
            raise ValueError(
                f"operator count {total_ops} is not a multiple of "
                f"{num_inputs} inputs (the paper uses equal-size trees)"
            )
        runs: Dict[str, List[float]] = {name: [] for name in algorithms}
        for g in range(graph_repeats):
            model = make_model(
                num_inputs, total_ops // num_inputs,
                seed=graph_seed + 7919 * g,
            )
            for name in algorithms:
                runs[name].extend(
                    volume_ratio_runs(
                        name,
                        model,
                        capacities,
                        repeats=repeats,
                        samples=samples,
                        base_seed=graph_seed + total_ops + 31 * g,
                        jobs=jobs,
                    )
                )
        rod_ratio = (
            float(np.mean(runs["rod"])) if "rod" in runs else None
        )
        for name in algorithms:
            values = np.asarray(runs[name])
            row: Dict[str, object] = {
                "operators": total_ops,
                "algorithm": name,
                "ratio_to_ideal": float(values.mean()),
                "std": float(values.std()),
            }
            if rod_ratio:
                row["ratio_to_rod"] = float(values.mean()) / rod_ratio
            rows.append(row)
    return rows
