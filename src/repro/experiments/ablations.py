"""Ablations of ROD's design choices (DESIGN.md §6).

Two knobs the paper motivates but does not isolate:

* **operator ordering** — Section 5.1 sorts by load-vector norm so heavy
  operators are placed early; the ablation compares against graph order
  and random orders;
* **Class I tie-break** — Section 5.2 leaves the choice among Class I
  nodes open ("a random node can be selected or ... some other criteria");
  the ablation compares maximizing candidate plane distance, first-fit,
  random, and fewest inter-node arcs.
"""

from __future__ import annotations

import random
from typing import Dict, List

import numpy as np

from ..core.rod import CLASS_ONE_POLICIES, rod_place
from .common import make_model

__all__ = ["run_ordering", "run_class_one_policy"]


def run_ordering(
    num_inputs: int = 5,
    operators_per_tree: int = 16,
    num_nodes: int = 8,
    random_orders: int = 5,
    samples: int = 4096,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Volume ratio of norm-sorted vs graph-order vs random-order ROD."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []

    sorted_plan = rod_place(model, capacities)
    rows.append(
        {
            "ordering": "norm_descending",
            "volume_ratio": sorted_plan.volume_ratio(samples=samples),
            "plane_distance": sorted_plan.plane_distance(),
        }
    )
    natural = rod_place(
        model, capacities, order=list(range(model.num_operators))
    )
    rows.append(
        {
            "ordering": "graph_order",
            "volume_ratio": natural.volume_ratio(samples=samples),
            "plane_distance": natural.plane_distance(),
        }
    )
    rng = random.Random(seed)
    ratios, distances = [], []
    for _ in range(random_orders):
        order = list(range(model.num_operators))
        rng.shuffle(order)
        plan = rod_place(model, capacities, order=order)
        ratios.append(plan.volume_ratio(samples=samples))
        distances.append(plan.plane_distance())
    rows.append(
        {
            "ordering": f"random_mean_of_{random_orders}",
            "volume_ratio": float(np.mean(ratios)),
            "plane_distance": float(np.mean(distances)),
        }
    )
    return rows


def run_class_one_policy(
    num_inputs: int = 5,
    operators_per_tree: int = 16,
    num_nodes: int = 8,
    samples: int = 4096,
    seed: int = 19,
) -> List[Dict[str, object]]:
    """Volume ratio and inter-node arcs per Class I tie-break policy."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []
    for policy in CLASS_ONE_POLICIES:
        plan = rod_place(
            model, capacities, class_one_policy=policy, seed=seed
        )
        rows.append(
            {
                "policy": policy,
                "volume_ratio": plan.volume_ratio(samples=samples),
                "plane_distance": plan.plane_distance(),
                "inter_node_arcs": plan.inter_node_arcs(),
            }
        )
    return rows
