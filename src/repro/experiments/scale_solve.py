"""Scaling the solve: flat annealing vs hierarchical cluster-then-place.

The paper's experiments stop at tens of nodes; real stream-processing
deployments run hundreds.  This experiment measures how the two search
paths scale with cluster size on the same workload family:

* **flat** — ROD warm start polished by the incremental annealing
  kernel with its default budget (the strongest single-level baseline);
* **hierarchical** — :class:`~repro.placement.hierarchical.HierarchicalPlacer`:
  cluster-level ROD, capacity-balanced node groups, then masked
  within-group refinement with batched candidate scoring.

Measured shape (honest): at every measured scale the hierarchical
placement matches flat volume to within QMC noise (both searches end at
the ROD warm start's quality — annealing does not improve it at these
sample resolutions) while planning several times faster, and the gap
widens with ``n`` because flat's per-move scoring state grows with the
node count while the hierarchical path's refinement cost is fixed per
group.

Rows report planning seconds, the QMC volume ratio, and the
hierarchical-over-flat speedup per scale.  ``jobs > 1`` fans the
hierarchical group refinements out over worker processes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..placement.annealing import AnnealingPlacer
from ..placement.hierarchical import HierarchicalPlacer
from .common import make_model

__all__ = ["run"]


def run(
    scales: Sequence[Tuple[int, int, int]] = (
        (6, 32, 48),
        (6, 64, 96),
    ),
    samples: int = 4096,
    seed: int = 7,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Two rows (flat, hierarchical) per ``(inputs, ops_per_tree, nodes)``.

    The workload keeps roughly four operators per node so feasible-set
    ratios stay meaningfully away from zero as ``n`` grows.
    """
    rows: List[Dict[str, object]] = []
    for num_inputs, operators_per_tree, num_nodes in scales:
        model = make_model(num_inputs, operators_per_tree, seed=seed)
        capacities = [1.0] * num_nodes

        start = time.perf_counter()
        flat_plan = AnnealingPlacer(seed=seed).place(model, capacities)
        flat_seconds = time.perf_counter() - start

        start = time.perf_counter()
        hier_plan = HierarchicalPlacer(
            group_size=8,
            refine_iterations=100,
            samples=512,
            score_batch=16,
            seed=seed,
            jobs=jobs,
        ).place(model, capacities)
        hier_seconds = time.perf_counter() - start

        speedup = flat_seconds / hier_seconds if hier_seconds > 0 else 0.0
        for strategy, plan, seconds in (
            ("flat", flat_plan, flat_seconds),
            ("hierarchical", hier_plan, hier_seconds),
        ):
            rows.append({
                "strategy": strategy,
                "operators": model.num_operators,
                "nodes": num_nodes,
                "volume_ratio": plan.volume_ratio(samples=samples),
                "planning_seconds": seconds,
                "speedup_vs_flat": 1.0 if strategy == "flat" else speedup,
            })
    return rows
