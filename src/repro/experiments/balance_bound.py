"""How close is ROD's balance to the provable optimum? (DESIGN.md §6)

ROD's Class I phase pursues MMAD — balancing every stream across nodes —
greedily.  :class:`~repro.placement.milp.MilpBalancePlacer` solves that
objective *exactly* (minimum possible maximum weight ``w_ik``), so the
gap between the two quantifies what the greedy heuristic leaves on the
table, on instances beyond the exhaustive search's reach.

Two regimes, deliberately:

* **plentiful** operators (many small pieces per stream) — near-perfect
  balance is achievable, the exact solver reaches weight ≈ 1 (i.e. the
  ideal plan!) and beats greedy ROD on volume too.  The catch is cost:
  the MILP has ``n·m`` binaries and blows up long before the paper's
  200-operator workloads, while ROD stays in milliseconds.
* **scarce** operators (a few heavy pieces) — perfect balance is
  impossible, the balance objective stops being a volume proxy, and
  greedy ROD with its MMPD fallback matches or beats the balance-optimal
  plan's volume.

The rows report both weights, both volumes, and both planning times.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..core.rod import rod_place
from ..placement.milp import MilpBalancePlacer
from .common import make_model

__all__ = ["run"]


def run(
    graph_seeds: Sequence[int] = (3, 5, 8),
    regimes: Sequence[int] = (2, 12),
    num_inputs: int = 3,
    num_nodes: int = 4,
    samples: int = 4096,
    time_limit: float = 20.0,
) -> List[Dict[str, object]]:
    """One row per (operators-per-tree regime, workload graph)."""
    capacities = [1.0] * num_nodes
    placer = MilpBalancePlacer(time_limit=time_limit)
    rows: List[Dict[str, object]] = []
    for operators_per_tree in regimes:
        for seed in graph_seeds:
            model = make_model(num_inputs, operators_per_tree, seed=seed)
            start = time.perf_counter()
            rod_plan = rod_place(model, capacities)
            rod_seconds = time.perf_counter() - start
            start = time.perf_counter()
            milp_plan = placer.place(model, capacities)
            milp_seconds = time.perf_counter() - start
            rod_weight = float(rod_plan.weights().max())
            milp_weight = float(milp_plan.weights().max())
            rows.append(
                {
                    "regime": (
                        "scarce" if operators_per_tree <= 4 else "plentiful"
                    ),
                    "graph_seed": seed,
                    "operators": model.num_operators,
                    "rod_max_weight": rod_weight,
                    "optimal_max_weight": milp_weight,
                    "balance_gap": rod_weight / milp_weight - 1.0,
                    "rod_volume_ratio": rod_plan.volume_ratio(
                        samples=samples
                    ),
                    "milp_volume_ratio": milp_plan.volume_ratio(
                        samples=samples
                    ),
                    "rod_seconds": rod_seconds,
                    "milp_seconds": milp_seconds,
                }
            )
    return rows
