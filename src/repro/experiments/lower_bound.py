"""Section 6.1's general-lower-bound extension (reconstructed experiment).

When the input rates are known to stay at or above a floor ``B``, the
workload set shrinks to ``{R >= B}`` and ROD's MMPD heuristic should
measure plane distances from the normalized floor ``B̂`` instead of the
origin.  This harness compares, at increasing floor heights:

* plain ROD (origin-centered), evaluated on the restricted workload set;
* lower-bound-aware ROD (``rod_place(..., lower_bound=B)``);
* the LLF balancer tuned exactly to the floor point.

Expected shape: the two ROD variants coincide at ``B = 0``; averaged over
graphs the lower-bound-aware variant pulls clearly ahead once the floor
consumes a substantial share of capacity (plans that spend their slack
below the floor waste it), while at small floors the two are statistically
tied — both being greedy heuristics, either can win on a single graph.
Both dominate the balancer tuned exactly to the floor point.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.feasible_set import FeasibleSet
from ..core.plans import Placement
from ..core.rod import rod_place
from ..placement.llf import LLFPlacer
from .common import make_model

__all__ = ["run"]


def _restricted_ratio(
    placement: Placement, lower_bound: np.ndarray, samples: int
) -> float:
    """Feasible fraction of the workload set above the floor."""
    restricted = FeasibleSet(
        node_coefficients=placement.node_coefficients(),
        capacities=placement.capacities,
        column_totals=placement.model.column_totals(),
        lower_bound=lower_bound,
    )
    return restricted.volume_ratio(samples=samples)


def run(
    floor_fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
    num_inputs: int = 4,
    operators_per_tree: int = 8,
    num_nodes: int = 6,
    samples: int = 4096,
    seed: int = 43,
) -> List[Dict[str, object]]:
    """One row per (floor height, algorithm).

    ``floor_fraction`` f sets an *asymmetric* floor ``B``: the first input
    stream is known to never drop below a rate consuming a fraction ``f``
    of total capacity (``b_0 = f * C_T / l_0``), the others may go to
    zero.  Asymmetry is the interesting case — a symmetric floor shifts
    every plan's feasible set equally, whereas a lopsided one rewards
    plans that spend their slack on the *other* streams (Figure 12).
    """
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    capacities = np.ones(num_nodes)
    totals = model.column_totals()
    c_t = float(capacities.sum())
    rows: List[Dict[str, object]] = []
    for fraction in floor_fractions:
        if not 0 <= fraction < 1:
            raise ValueError("floor fractions must be in [0, 1)")
        floor = np.zeros(model.num_variables)
        if totals[0] > 0:
            floor[0] = fraction * c_t / totals[0]
        plans = {
            "rod": rod_place(model, capacities),
            "rod_lb": rod_place(model, capacities, lower_bound=floor),
            "llf_at_floor": LLFPlacer(
                rates=np.where(floor > 0, floor, 1.0)
            ).place(model, capacities),
        }
        for name, plan in plans.items():
            rows.append(
                {
                    "floor_fraction": fraction,
                    "algorithm": name,
                    "restricted_ratio": _restricted_ratio(
                        plan, floor, samples
                    ),
                    "plane_distance_from_floor": FeasibleSet(
                        plan.node_coefficients(),
                        capacities,
                        column_totals=totals,
                        lower_bound=floor,
                    ).plane_distance(),
                }
            )
    return rows
