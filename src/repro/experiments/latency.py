"""Latency under bursty trace replay (reconstructed prototype experiment).

The Borealis half of Section 7 reports processing latencies on real
network traces: plans optimized for the average load point melt down when
short-term bursts push a node past saturation, while ROD's resilient
plans keep every node below capacity at many more rate combinations and
therefore keep latencies low.

This harness replays the synthetic self-similar traces through the
simulator for each placement algorithm, sweeping the *mean* system
utilization upward, and reports end-to-end latency statistics and
saturation indicators.  Expected shape: comparable latencies at low load;
as the mean approaches capacity, the balancers hit infeasible bursts
(utilization > 1, exploding p95) before ROD does.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


from ..simulator.engine import Simulator
from ..workload.scenarios import steady_trace_series
from .common import ALGORITHMS, make_model, make_placer

__all__ = ["run"]


def run(
    utilizations: Sequence[float] = (0.5, 0.7, 0.85),
    num_inputs: int = 3,
    operators_per_tree: int = 10,
    num_nodes: int = 4,
    steps: int = 400,
    step_seconds: float = 0.05,
    seed: int = 31,
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[Dict[str, object]]:
    """One row per (mean utilization, algorithm) with latency statistics."""
    model = make_model(num_inputs, operators_per_tree, seed=seed)
    if model.is_linearized:
        raise AssertionError("random tree graphs are linear by construction")
    capacities = [1.0] * num_nodes
    rows: List[Dict[str, object]] = []
    for utilization in utilizations:
        series = steady_trace_series(
            model, capacities, steps, utilization, seed=seed + 1
        )
        for name in algorithms:
            placer = make_placer(name, model, run_seed=seed + 7)
            placement = placer.place(model, capacities)
            result = Simulator(placement, step_seconds=step_seconds).run(
                rate_series=series
            )
            rows.append(
                {
                    "mean_utilization": utilization,
                    "algorithm": name,
                    "mean_latency_ms": result.latency.mean() * 1e3,
                    "p95_latency_ms": result.latency.percentile(95) * 1e3,
                    "max_latency_ms": result.latency.maximum() * 1e3,
                    "max_node_utilization": result.max_utilization,
                    "backlog_s": float(result.backlog_seconds.max()),
                    # Demand-based saturation: did any node receive more
                    # work than it could serve within the horizon?
                    "overloaded": result.max_utilization > 1.0,
                }
            )
    return rows
