"""Skew model for elastic data partitioning.

Range partitioning splits the *key space*; load balance depends on how
the observed keys distribute over it.  This module supplies the three
pieces the elastic machinery shares:

* a **stable key hash** mapping any key into the unit interval,
  deterministic across processes and ``PYTHONHASHSEED`` values (unlike
  builtin ``hash``), so routing decisions replay identically in the
  determinism harness;
* a :class:`KeyHistogram` of observed key weights, from which balanced
  contiguous hash ranges (and their widths, the partition *fractions*)
  are derived; and
* :func:`rebalanced_fractions`, the histogram-free fallback the runtime
  controller uses: correct the current fractions proportionally to each
  partition's observed load.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "stable_key_hash",
    "stable_unit_hash",
    "KeyHistogram",
    "rebalanced_fractions",
]

_HASH_SPACE = float(2**32)


def stable_key_hash(key: object) -> int:
    """CRC32 of the key's ``repr`` — stable across interpreter runs."""
    return zlib.crc32(repr(key).encode("utf-8"))


def stable_unit_hash(key: object) -> float:
    """The key's position in the unit interval ``[0, 1)``."""
    return stable_key_hash(key) / _HASH_SPACE


class KeyHistogram:
    """Weighted histogram of observed keys.

    ``observe`` accumulates per-key weight (tuple counts, or measured
    per-key CPU).  :meth:`fractions` then cuts the unit hash interval
    into ``ways`` contiguous ranges of approximately equal observed
    weight; the range widths are the skew-aware partition fractions fed
    to :func:`repro.graphs.partition.partition_operator`.
    """

    def __init__(
        self, counts: Optional[Mapping[object, float]] = None
    ) -> None:
        self._weights: Dict[object, float] = {}
        if counts:
            for key in counts:
                self.observe(key, counts[key])

    def observe(self, key: object, weight: float = 1.0) -> None:
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self._weights[key] = self._weights.get(key, 0.0) + float(weight)

    @property
    def total(self) -> float:
        return sum(self._weights.values())

    def __len__(self) -> int:
        return len(self._weights)

    def _points(self) -> List[Tuple[float, float]]:
        """(unit-hash position, weight) pairs in hash order."""
        positions: Dict[float, float] = {}
        for key in self._weights:
            u = stable_unit_hash(key)
            positions[u] = positions.get(u, 0.0) + self._weights[key]
        return sorted(positions.items())

    def fractions(self, ways: int) -> Tuple[float, ...]:
        """Widths of ``ways`` contiguous hash ranges with balanced weight.

        Falls back to uniform widths when the histogram is empty or has
        fewer distinct keys than ``ways`` (no basis for a skewed cut).
        """
        if ways < 1:
            raise ValueError("ways must be >= 1")
        if ways == 1:
            return (1.0,)
        uniform = (1.0 / ways,) * ways
        points = self._points()
        total = sum(w for _, w in points)
        if len(points) < ways or total <= 0.0:
            return uniform
        cuts: List[float] = []
        accumulated = 0.0
        j = 0
        for i in range(ways - 1):
            target = total * (i + 1) / ways
            while (
                j < len(points)
                and accumulated + points[j][1] <= target + 1e-12
            ):
                accumulated += points[j][1]
                j += 1
            left = points[j - 1][0] if j > 0 else 0.0
            right = points[j][0] if j < len(points) else 1.0
            cuts.append((left + right) / 2.0)
        bounds = [0.0] + cuts + [1.0]
        if any(hi <= lo for lo, hi in zip(bounds, bounds[1:])):
            return uniform
        return tuple(hi - lo for lo, hi in zip(bounds, bounds[1:]))

    def observed_shares(
        self, fractions: Sequence[float]
    ) -> Tuple[float, ...]:
        """Observed weight share landing in each hash range.

        This is the *effective* selectivity of each range partitioner
        under the observed key distribution — uniform range widths over
        skewed keys yield decidedly non-uniform shares, which is the
        imbalance the elastic controller corrects.
        """
        bounds = [0.0]
        for fraction in fractions:
            bounds.append(bounds[-1] + float(fraction))
        bounds[-1] = 1.0
        shares = [0.0] * len(fractions)
        total = 0.0
        for key in self._weights:
            weight = self._weights[key]
            index = bisect_right(bounds, stable_unit_hash(key)) - 1
            index = min(max(index, 0), len(fractions) - 1)
            shares[index] += weight
            total += weight
        if total <= 0.0:
            return (1.0 / len(fractions),) * len(fractions)
        return tuple(share / total for share in shares)


def rebalanced_fractions(
    fractions: Sequence[float],
    loads: Sequence[float],
    min_fraction: float = 0.01,
) -> Tuple[float, ...]:
    """Correct partition fractions toward equal observed load.

    Each partition's load density is ``load_i / fraction_i``; giving
    every partition the same load means sizing fractions inversely to
    density, i.e. ``fraction_i / load_i`` renormalized.  Partitions with
    (near-)zero observed load are floored so no range collapses to
    nothing — the density there is simply unknown.
    """
    if len(fractions) != len(loads):
        raise ValueError("fractions and loads must have equal length")
    if not 0.0 < min_fraction < 1.0 / len(fractions):
        raise ValueError(
            f"min_fraction must be in (0, 1/ways), got {min_fraction}"
        )
    current = [float(f) for f in fractions]
    observed = [max(float(load), 0.0) for load in loads]
    total_load = sum(observed)
    if total_load <= 0.0:
        scale = sum(current)
        return tuple(f / scale for f in current)
    floor = 1e-3 * total_load / len(observed)
    raw = [
        f / max(load, floor) for f, load in zip(current, observed)
    ]
    scale = sum(raw)
    scaled = [value / scale for value in raw]
    # Clamp starved ranges to the floor width, renormalizing the rest.
    clamped_mass = sum(
        min_fraction for value in scaled if value < min_fraction
    )
    free_mass = sum(value for value in scaled if value >= min_fraction)
    result = tuple(
        min_fraction
        if value < min_fraction
        else value * (1.0 - clamped_mass) / free_mass
        for value in scaled
    )
    return result
