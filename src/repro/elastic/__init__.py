"""Elastic operator parallelism: skew-aware splitting and merging.

This package holds the key-space machinery shared by the two halves of
elasticity:

* :mod:`repro.elastic.skew` — a PYTHONHASHSEED-independent unit hash,
  :class:`KeyHistogram` for observed key-frequency tracking with
  balanced hash-range cuts, and :func:`rebalanced_fractions` for
  load-proportional range corrections.
* :mod:`repro.elastic.program` — :func:`partition_program`, the runtime
  rewrite splitting one functional operator into key-partitioned
  parallel instances with semantic transparency.

The consumers live with their siblings:
:class:`repro.placement.elastic.ElasticPlacer` (placement-time
split/merge against the load model) and
:class:`repro.dynamics.elasticity.ElasticityController` (runtime
skew-aware repartitioning applied by the simulator).
"""

from .program import partition_program
from .skew import (
    KeyHistogram,
    rebalanced_fractions,
    stable_key_hash,
    stable_unit_hash,
)

__all__ = [
    "KeyHistogram",
    "partition_program",
    "rebalanced_fractions",
    "stable_key_hash",
    "stable_unit_hash",
]
