"""Elastic rewrites of runtime stream programs.

:func:`partition_program` is the runtime twin of
:func:`repro.graphs.partition.partition_operator`: it splits one
functional operator into ``ways`` key-partitioned instances behind
hash-range router filters, merged back by an order-transparent
:class:`~repro.runtime.functional.FnMerge`.  Routing uses the stable
unit hash of :mod:`repro.elastic.skew`, so every record lands in exactly
one partition and the decision replays identically across processes and
``PYTHONHASHSEED`` values.

Semantic transparency is the invariant: for stateless split targets
(maps, filters) the rewritten program produces *bit-identical* results
at any parallelism, because exactly one route passes each record and the
merge adds nothing.  Splitting a grouped operator stays
content-equivalent when the routing key equals the grouping key (each
group lives wholly inside one partition), but cross-group emission
*order* at a shared watermark may differ from the unsplit program —
which is why the elastic placer only volunteers stateless operators.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, List, Optional, Sequence

from ..graphs.partition import (
    DEFAULT_MERGE_COST,
    DEFAULT_ROUTE_COST,
    validate_fractions,
)
from ..runtime.functional import FnFilter, FnMerge
from ..runtime.program import StreamProgram
from .skew import stable_unit_hash

__all__ = ["partition_program"]


def _range_predicate(
    key: Callable[[Any], Any], lo: float, hi: float
) -> Callable[[Any], bool]:
    def predicate(data: Any) -> bool:
        return lo <= stable_unit_hash(key(data)) < hi

    return predicate


def partition_program(
    program: StreamProgram,
    operator_name: str,
    ways: int,
    key: Callable[[Any], Any],
    fractions: Optional[Sequence[float]] = None,
    route_cost: float = DEFAULT_ROUTE_COST,
    merge_cost: float = DEFAULT_MERGE_COST,
) -> StreamProgram:
    """Split ``operator_name`` into ``ways`` key-partitioned instances.

    ``key(data)`` extracts the partitioning key from a record;
    ``fractions`` sets each instance's hash-range width (uniform by
    default, or skew-balanced widths from
    :meth:`~repro.elastic.skew.KeyHistogram.fractions`).  Every operator
    is deep-copied into the rebuilt program, so the original program and
    rewrites at other parallelism degrees keep independent state.
    """
    target = program.operator(operator_name)
    if target.arity != 1:
        raise ValueError(
            f"{operator_name}: only single-input operators can be "
            "partitioned"
        )
    shares = validate_fractions(ways, fractions)
    bounds = [0.0]
    for share in shares:
        bounds.append(bounds[-1] + share)
    bounds[-1] = 1.0

    rebuilt = StreamProgram(
        name=f"{program.name}/part-{operator_name}x{ways}"
    )
    for input_name in program.input_names:
        rebuilt.add_input(input_name)
    # The merge produces "<target>.merge.out", not "<target>.out":
    # downstream consumers are remapped onto it.
    remap = {}
    for name in program.operator_names:
        inputs = [
            remap.get(stream, stream)
            for stream in program.inputs_of(name)
        ]
        if name != operator_name:
            rebuilt.add(copy.deepcopy(program.operator(name)), inputs)
            continue
        part_streams: List[str] = []
        for part in range(ways):
            route_out = rebuilt.add(
                FnFilter(
                    f"{operator_name}.route{part}",
                    _range_predicate(key, bounds[part], bounds[part + 1]),
                    cost=route_cost,
                ),
                inputs,
            )
            clone = copy.deepcopy(target)
            clone.name = f"{operator_name}.part{part}"
            part_streams.append(rebuilt.add(clone, [route_out]))
        merge_out = rebuilt.add(
            FnMerge(
                f"{operator_name}.merge", arity=ways, cost=merge_cost
            ),
            part_streams,
        )
        remap[f"{operator_name}.out"] = merge_out
    return rebuilt
