"""JSON serialization of query graphs.

Lets deployments describe query networks declaratively (config files,
the CLI) and lets plans/graphs round-trip through ops tooling.  The
document format:

.. code-block:: json

    {
      "name": "my-query",
      "inputs": ["I1", "I2"],
      "operators": [
        {"name": "f", "kind": "filter", "inputs": ["I1"],
         "cost": 1e-4, "selectivity": 0.5},
        {"name": "j", "kind": "window_join", "inputs": ["f.out", "I2"],
         "cost_per_pair": 2e-4, "selectivity": 0.1, "window": 0.1}
      ]
    }

Operators may set ``"output"`` to override the default ``<name>.out``
stream name.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .operators import (
    Aggregate,
    Delay,
    Filter,
    LinearOperator,
    Map,
    Operator,
    Union,
    VariableSelectivityOp,
    WindowJoin,
)
from .partition import PartitionGroup
from .query_graph import QueryGraph

__all__ = ["graph_to_dict", "graph_from_dict", "dump_graph", "load_graph"]


def _operator_to_dict(op: Operator) -> Dict[str, Any]:
    if isinstance(op, Map):
        return {"kind": "map", "cost": op.costs[0]}
    if isinstance(op, Filter):
        return {"kind": "filter", "cost": op.costs[0],
                "selectivity": op.selectivities[0]}
    if isinstance(op, Union):
        return {"kind": "union", "costs": list(op.costs)}
    if isinstance(op, Aggregate):
        return {"kind": "aggregate", "cost": op.costs[0],
                "selectivity": op.selectivities[0]}
    if isinstance(op, Delay):
        return {"kind": "delay", "cost": op.costs[0],
                "selectivity": op.selectivities[0]}
    if isinstance(op, VariableSelectivityOp):
        return {"kind": "variable_selectivity", "cost": op.cost,
                "nominal_selectivity": op.nominal_selectivity}
    if isinstance(op, WindowJoin):
        return {"kind": "window_join", "cost_per_pair": op.cost_per_pair,
                "selectivity": op.selectivity, "window": op.window}
    if isinstance(op, LinearOperator):
        return {"kind": "linear", "costs": list(op.costs),
                "selectivities": list(op.selectivities)}
    raise TypeError(f"cannot serialize operator type {type(op).__name__}")


def _operator_from_dict(doc: Dict[str, Any]) -> Operator:
    kind = doc.get("kind")
    name = doc["name"]
    if kind == "map":
        return Map(name, cost=doc["cost"])
    if kind == "filter":
        return Filter(name, cost=doc["cost"], selectivity=doc["selectivity"])
    if kind == "union":
        return Union(name, costs=doc["costs"])
    if kind == "aggregate":
        return Aggregate(name, cost=doc["cost"],
                         selectivity=doc["selectivity"])
    if kind == "delay":
        return Delay(name, cost=doc["cost"], selectivity=doc["selectivity"])
    if kind == "variable_selectivity":
        return VariableSelectivityOp(
            name, cost=doc["cost"],
            nominal_selectivity=doc.get("nominal_selectivity", 1.0),
        )
    if kind == "window_join":
        return WindowJoin(name, cost_per_pair=doc["cost_per_pair"],
                          selectivity=doc["selectivity"],
                          window=doc["window"])
    if kind == "linear":
        return LinearOperator(name, costs=tuple(doc["costs"]),
                              selectivities=tuple(doc["selectivities"]))
    raise ValueError(f"unknown operator kind: {kind!r}")


def graph_to_dict(graph: QueryGraph) -> Dict[str, Any]:
    """Serialize a query graph to a plain dictionary."""
    operators: List[Dict[str, Any]] = []
    for op in graph.operators():
        doc = _operator_to_dict(op)
        doc["name"] = op.name
        doc["inputs"] = list(graph.inputs_of(op.name))
        output = graph.output_of(op.name).name
        if output != f"{op.name}.out":
            doc["output"] = output
        operators.append(doc)
    result: Dict[str, Any] = {
        "name": graph.name,
        "inputs": list(graph.input_names),
        "operators": operators,
    }
    # Partition provenance rides along only when present, so documents
    # of never-partitioned graphs are byte-identical to older ones.
    if graph.partition_groups:
        result["partitions"] = [
            {
                "base": group.base,
                "ways": group.ways,
                "routes": list(group.routes),
                "parts": list(group.parts),
                "merge": group.merge,
                "fractions": list(group.fractions),
                "route_cost": group.route_cost,
                "merge_cost": group.merge_cost,
            }
            for base in sorted(graph.partition_groups)
            for group in (graph.partition_groups[base],)
        ]
    return result


def graph_from_dict(doc: Dict[str, Any]) -> QueryGraph:
    """Rebuild a query graph from :func:`graph_to_dict`'s format.

    Operators must appear after the streams they consume (the format is
    emitted in topological order; hand-written documents must respect
    that too, and get a clear error otherwise).
    """
    if "inputs" not in doc or "operators" not in doc:
        raise ValueError("graph document needs 'inputs' and 'operators'")
    graph = QueryGraph(name=doc.get("name", "query"))
    for input_name in doc["inputs"]:
        graph.add_input(input_name)
    for op_doc in doc["operators"]:
        if "name" not in op_doc or "inputs" not in op_doc:
            raise ValueError(
                f"operator document needs 'name' and 'inputs': {op_doc!r}"
            )
        graph.add_operator(
            _operator_from_dict(op_doc),
            op_doc["inputs"],
            output_name=op_doc.get("output"),
        )
    for group_doc in doc.get("partitions", ()):
        group = PartitionGroup(
            base=group_doc["base"],
            ways=int(group_doc["ways"]),
            routes=tuple(group_doc["routes"]),
            parts=tuple(group_doc["parts"]),
            merge=group_doc["merge"],
            fractions=tuple(float(f) for f in group_doc["fractions"]),
            route_cost=float(group_doc["route_cost"]),
            merge_cost=float(group_doc["merge_cost"]),
        )
        for member in group.derived:
            graph.operator(member)  # raises KeyError on dangling provenance
        graph.partition_groups[group.base] = group
    return graph


def dump_graph(graph: QueryGraph, path: str) -> None:
    """Write a graph to a JSON file."""
    with open(path, "w") as handle:
        json.dump(graph_to_dict(graph), handle, indent=2)
        handle.write("\n")


def load_graph(path: str) -> QueryGraph:
    """Read a graph from a JSON file."""
    with open(path) as handle:
        return graph_from_dict(json.load(handle))
