"""Query graphs, operators and workload-graph generators."""

from .operators import (
    Aggregate,
    Delay,
    Filter,
    LinearOperator,
    Map,
    Operator,
    Union,
    VariableSelectivityOp,
    WindowJoin,
)
from .query_graph import Arc, QueryGraph, Stream
from .partition import parallelize_heaviest, partition_operator
from .serialize import dump_graph, graph_from_dict, graph_to_dict, load_graph
from .stats import (
    MeasuredStatistics,
    graph_from_statistics,
    measure_statistics,
    measure_statistics_stable,
)
from .generator import (
    RandomGraphConfig,
    join_graph,
    monitoring_graph,
    paper_example3_graph,
    paper_example_graph,
    random_tree_graph,
)

__all__ = [
    "Aggregate",
    "Arc",
    "Delay",
    "Filter",
    "LinearOperator",
    "Map",
    "MeasuredStatistics",
    "graph_from_statistics",
    "measure_statistics",
    "measure_statistics_stable",
    "Operator",
    "QueryGraph",
    "RandomGraphConfig",
    "Stream",
    "Union",
    "VariableSelectivityOp",
    "WindowJoin",
    "dump_graph",
    "graph_from_dict",
    "graph_to_dict",
    "join_graph",
    "load_graph",
    "monitoring_graph",
    "parallelize_heaviest",
    "partition_operator",
    "paper_example3_graph",
    "paper_example_graph",
    "random_tree_graph",
]
