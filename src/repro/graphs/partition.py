"""Data-partitioning graph rewrites (Section 7.3.1's remark).

"Even in cases where the user-specified query graph is rather small,
parallelization techniques (e.g., range-based data partitioning)
significantly increase the number of operator instances, thus creating
much wider, larger graphs."

Wider graphs are exactly where ROD shines: each stream's load splits
into more, smaller pieces that can be balanced.  This module performs
the rewrite: a linear single-input operator is replaced by ``ways``
parallel instances behind range partitioners, with a union merging their
outputs.  In the load model a uniform range partitioner is precisely a
filter of selectivity ``1/ways`` — so the rewritten graph stays within
the linear framework with no new operator kinds.

The rewrite preserves semantics in expectation (uniform key
distribution) and preserves the *total* load of the replaced operator
exactly, adding only the partitioners' routing cost and the merge
union's cost — which is why resilience improves rather than load
magically disappearing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .operators import Filter, LinearOperator, Union
from .query_graph import QueryGraph

__all__ = ["partition_operator", "parallelize_heaviest"]

#: Default per-tuple CPU cost of routing a tuple to its range partition.
DEFAULT_ROUTE_COST = 1e-5
#: Default per-tuple CPU cost of merging partitioned outputs.
DEFAULT_MERGE_COST = 1e-5


def _copy_operator(op, new_name: str):
    """A clone of a linear single-input operator under a new name."""
    return LinearOperator(
        new_name, costs=op.costs, selectivities=op.selectivities
    )


def partition_operator(
    graph: QueryGraph,
    operator_name: str,
    ways: int,
    route_cost: float = DEFAULT_ROUTE_COST,
    merge_cost: float = DEFAULT_MERGE_COST,
) -> QueryGraph:
    """Rewrite ``graph`` with ``operator_name`` split ``ways`` ways.

    Only linear single-input operators can be partitioned (joins would
    need key-consistent co-partitioning of both inputs — the paper's
    remark concerns the common linear case).  Returns a new graph; the
    original is untouched.
    """
    if ways < 2:
        raise ValueError("ways must be >= 2")
    target = graph.operator(operator_name)
    if not isinstance(target, LinearOperator):
        raise TypeError(
            f"{operator_name}: only linear operators can be partitioned"
        )
    if target.arity != 1:
        raise ValueError(
            f"{operator_name}: only single-input operators can be "
            "partitioned"
        )
    (target_input,) = graph.inputs_of(operator_name)
    old_output = graph.output_of(operator_name).name

    rebuilt = QueryGraph(name=f"{graph.name}/part-{operator_name}x{ways}")
    for input_name in graph.input_names:
        rebuilt.add_input(input_name)

    # Stream names in the old graph map to themselves except the
    # partitioned operator's output, which is produced by the new union.
    for name in graph.operator_names:
        if name == operator_name:
            instance_outputs = []
            for part in range(ways):
                route = rebuilt.add_operator(
                    Filter(
                        f"{operator_name}.route{part}",
                        cost=route_cost,
                        selectivity=1.0 / ways,
                    ),
                    [target_input],
                )
                instance = rebuilt.add_operator(
                    _copy_operator(target, f"{operator_name}.part{part}"),
                    [route],
                )
                instance_outputs.append(instance)
            rebuilt.add_operator(
                Union(
                    f"{operator_name}.merge",
                    costs=[merge_cost] * ways,
                ),
                instance_outputs,
                output_name=old_output,
            )
        else:
            op = graph.operator(name)
            rebuilt.add_operator(
                op,
                list(graph.inputs_of(name)),
                output_name=graph.output_of(name).name,
            )
    return rebuilt


def parallelize_heaviest(
    graph: QueryGraph,
    count: int,
    ways: int,
    rates: Optional[Sequence[float]] = None,
    route_cost: float = DEFAULT_ROUTE_COST,
    merge_cost: float = DEFAULT_MERGE_COST,
) -> QueryGraph:
    """Partition the ``count`` heaviest eligible operators ``ways`` ways.

    "Heaviest" is judged by load at ``rates`` (default: all-ones input
    rates).  Operators created by earlier partitioning steps (routes,
    instances, merges) are never re-partitioned.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    result = graph
    partitioned: set = set()
    for _ in range(count):
        probe_rates = (
            [1.0] * result.num_inputs if rates is None else list(rates)
        )
        loads = result.operator_loads(probe_rates)
        candidates = []
        for name, load in loads.items():
            op = result.operator(name)
            if name in partitioned or "." in name:
                continue
            if isinstance(op, LinearOperator) and op.arity == 1:
                candidates.append((load, name))
        if not candidates:
            break
        _, heaviest = max(candidates)
        result = partition_operator(
            result, heaviest, ways,
            route_cost=route_cost, merge_cost=merge_cost,
        )
        partitioned.add(heaviest)
    return result
