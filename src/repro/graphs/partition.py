"""Data-partitioning graph rewrites (Section 7.3.1's remark).

"Even in cases where the user-specified query graph is rather small,
parallelization techniques (e.g., range-based data partitioning)
significantly increase the number of operator instances, thus creating
much wider, larger graphs."

Wider graphs are exactly where ROD shines: each stream's load splits
into more, smaller pieces that can be balanced.  This module performs
the rewrite: a linear single-input operator is replaced by ``ways``
parallel instances behind range partitioners, with a union merging their
outputs.  In the load model a range partitioner routing a ``fraction``
of the key space is precisely a filter of that selectivity — uniform
``1/ways`` by default, or skew-aware fractions derived from an observed
key histogram (:mod:`repro.elastic.skew`) — so the rewritten graph stays
within the linear framework with no new operator kinds.

The rewrite preserves semantics in expectation and preserves the *total*
load of the replaced operator exactly, adding only the partitioners'
routing cost and the merge union's cost — which is why resilience
improves rather than load magically disappearing.

Every rewrite records a :class:`PartitionGroup` in the graph's
``partition_groups`` mapping, so later passes (deeper splits, merges,
runtime repartitioning) reason about partitioning from explicit
provenance instead of parsing operator names.
:func:`unpartition_operator` is the exact inverse rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from .operators import Filter, LinearOperator, Union
from .query_graph import QueryGraph

__all__ = [
    "PartitionGroup",
    "derived_partition_names",
    "validate_fractions",
    "partition_operator",
    "unpartition_operator",
    "parallelize_heaviest",
]

#: Default per-tuple CPU cost of routing a tuple to its range partition.
DEFAULT_ROUTE_COST = 1e-5
#: Default per-tuple CPU cost of merging partitioned outputs.
DEFAULT_MERGE_COST = 1e-5


@dataclass(frozen=True)
class PartitionGroup:
    """Provenance of one data-partitioning rewrite.

    Records the operators the rewrite created (range partitioners,
    parallel instances, the merge union) and the key-space fraction
    currently routed to each instance.  Stored under the base operator's
    name in ``QueryGraph.partition_groups`` and carried forward by every
    subsequent rewrite.
    """

    base: str
    ways: int
    routes: Tuple[str, ...]
    parts: Tuple[str, ...]
    merge: str
    fractions: Tuple[float, ...]
    route_cost: float
    merge_cost: float

    @property
    def derived(self) -> Tuple[str, ...]:
        """All operator names created by the rewrite."""
        return self.routes + self.parts + (self.merge,)


def derived_partition_names(graph: QueryGraph) -> FrozenSet[str]:
    """Names of all operators created by partitioning rewrites."""
    names = set()
    for base in sorted(graph.partition_groups):
        names.update(graph.partition_groups[base].derived)
    return frozenset(names)


def _copy_operator(op: LinearOperator, new_name: str) -> LinearOperator:
    """A same-class clone of a linear operator under a new name.

    Subclasses (``Filter``, ``Delay``, ...) define bespoke ``__init__``
    signatures, so the clone is assembled field-by-field: the concrete
    type must survive — serialization and runtime lowering dispatch on
    it.
    """
    clone = object.__new__(type(op))
    object.__setattr__(clone, "name", new_name)
    object.__setattr__(clone, "costs", op.costs)
    object.__setattr__(clone, "selectivities", op.selectivities)
    return clone


def validate_fractions(
    ways: int, fractions: Optional[Sequence[float]]
) -> Tuple[float, ...]:
    if fractions is None:
        return (1.0 / ways,) * ways
    result = tuple(float(f) for f in fractions)
    if len(result) != ways:
        raise ValueError(
            f"expected {ways} fractions, got {len(result)}: {result!r}"
        )
    if any(f <= 0.0 for f in result):
        raise ValueError(f"fractions must be > 0, got {result!r}")
    if abs(sum(result) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {result!r}")
    return result


def partition_operator(
    graph: QueryGraph,
    operator_name: str,
    ways: int,
    route_cost: float = DEFAULT_ROUTE_COST,
    merge_cost: float = DEFAULT_MERGE_COST,
    fractions: Optional[Sequence[float]] = None,
) -> QueryGraph:
    """Rewrite ``graph`` with ``operator_name`` split ``ways`` ways.

    Only linear single-input operators can be partitioned (joins would
    need key-consistent co-partitioning of both inputs — the paper's
    remark concerns the common linear case).  ``fractions`` sets the
    key-space share routed to each instance (default uniform); skewed
    key distributions call for non-uniform fractions so the instances'
    *loads* balance.  Returns a new graph; the original is untouched.
    """
    if ways < 2:
        raise ValueError("ways must be >= 2")
    target = graph.operator(operator_name)
    if not isinstance(target, LinearOperator):
        raise TypeError(
            f"{operator_name}: only linear operators can be partitioned"
        )
    if target.arity != 1:
        raise ValueError(
            f"{operator_name}: only single-input operators can be "
            "partitioned"
        )
    if operator_name in derived_partition_names(graph):
        raise ValueError(
            f"{operator_name}: created by an earlier partitioning step; "
            "unpartition its group first"
        )
    shares = validate_fractions(ways, fractions)
    (target_input,) = graph.inputs_of(operator_name)
    old_output = graph.output_of(operator_name).name

    rebuilt = QueryGraph(name=f"{graph.name}/part-{operator_name}x{ways}")
    for input_name in graph.input_names:
        rebuilt.add_input(input_name)

    # Stream names in the old graph map to themselves except the
    # partitioned operator's output, which is produced by the new union.
    routes = []
    parts = []
    for name in graph.operator_names:
        if name == operator_name:
            instance_outputs = []
            for part in range(ways):
                route_name = f"{operator_name}.route{part}"
                route = rebuilt.add_operator(
                    Filter(
                        route_name,
                        cost=route_cost,
                        selectivity=shares[part],
                    ),
                    [target_input],
                )
                part_name = f"{operator_name}.part{part}"
                instance = rebuilt.add_operator(
                    _copy_operator(target, part_name),
                    [route],
                )
                routes.append(route_name)
                parts.append(part_name)
                instance_outputs.append(instance)
            rebuilt.add_operator(
                Union(
                    f"{operator_name}.merge",
                    costs=[merge_cost] * ways,
                ),
                instance_outputs,
                output_name=old_output,
            )
        else:
            op = graph.operator(name)
            rebuilt.add_operator(
                op,
                list(graph.inputs_of(name)),
                output_name=graph.output_of(name).name,
            )
    rebuilt.partition_groups.update(graph.partition_groups)
    rebuilt.partition_groups[operator_name] = PartitionGroup(
        base=operator_name,
        ways=ways,
        routes=tuple(routes),
        parts=tuple(parts),
        merge=f"{operator_name}.merge",
        fractions=shares,
        route_cost=route_cost,
        merge_cost=merge_cost,
    )
    return rebuilt


def unpartition_operator(
    graph: QueryGraph, operator_name: str
) -> QueryGraph:
    """Inverse rewrite: collapse a partition group back to one operator.

    The group's routes, instances and merge are removed and the original
    operator (reconstructed from the first instance, same concrete type)
    is re-attached to the original input stream, producing the original
    output stream — downstream consumers are untouched.  Returns a new
    graph; the original is untouched.
    """
    remaining = dict(graph.partition_groups)
    try:
        group = remaining.pop(operator_name)
    except KeyError:
        raise KeyError(
            f"no partition group for operator: {operator_name!r}"
        ) from None
    (target_input,) = graph.inputs_of(group.routes[0])
    merged_output = graph.output_of(group.merge).name
    original = _copy_operator(graph.operator(group.parts[0]), operator_name)
    removed = set(group.derived)

    rebuilt = QueryGraph(name=f"{graph.name}/merge-{operator_name}")
    for input_name in graph.input_names:
        rebuilt.add_input(input_name)
    restored = False
    for name in graph.operator_names:
        if name in removed:
            if not restored:
                rebuilt.add_operator(
                    original, [target_input], output_name=merged_output
                )
                restored = True
            continue
        op = graph.operator(name)
        rebuilt.add_operator(
            op,
            list(graph.inputs_of(name)),
            output_name=graph.output_of(name).name,
        )
    rebuilt.partition_groups.update(remaining)
    return rebuilt


def parallelize_heaviest(
    graph: QueryGraph,
    count: int,
    ways: int,
    rates: Optional[Sequence[float]] = None,
    route_cost: float = DEFAULT_ROUTE_COST,
    merge_cost: float = DEFAULT_MERGE_COST,
) -> QueryGraph:
    """Partition the ``count`` heaviest eligible operators ``ways`` ways.

    "Heaviest" is judged by load at ``rates`` (default: all-ones input
    rates).  Operators created by earlier partitioning steps (routes,
    instances, merges) are identified through the graph's recorded
    partition groups — never by their names, so user operators with dots
    in their names stay eligible — and are never re-partitioned.  Load
    ties break in first-in-graph (topological insertion) order, so the
    choice is stable under operator renames.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    result = graph
    partitioned: set = set()
    for _ in range(count):
        probe_rates = (
            [1.0] * result.num_inputs if rates is None else list(rates)
        )
        loads = result.operator_loads(probe_rates)
        derived = derived_partition_names(result)
        heaviest: Optional[str] = None
        best_load = float("-inf")
        # ``loads`` iterates in topological insertion order; the strict
        # ``>`` keeps the first maximal operator on ties.
        for name, load in loads.items():
            if name in partitioned or name in derived:
                continue
            op = result.operator(name)
            if not (isinstance(op, LinearOperator) and op.arity == 1):
                continue
            if load > best_load:
                best_load = load
                heaviest = name
        if heaviest is None:
            break
        result = partition_operator(
            result, heaviest, ways,
            route_cost=route_cost, merge_cost=merge_cost,
        )
        partitioned.add(heaviest)
    return result
