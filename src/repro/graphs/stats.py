"""Cost and selectivity estimation from trial runs (Section 7.1).

The prototype "randomly distribute[s] the operators and run[s] the system
for a sufficiently long time to gather stable statistics" before planning.
This module reproduces that loop on the simulator: run the graph under a
random placement, read each operator's measured per-tuple cost and
selectivity, and rebuild a query graph whose declared statistics are the
*measured* ones.  Placement algorithms then plan against the measured
graph, exactly as the prototype plans against Borealis statistics rather
than ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .operators import (
    LinearOperator,
    Operator,
    VariableSelectivityOp,
    WindowJoin,
)
from .query_graph import QueryGraph

__all__ = [
    "MeasuredStatistics",
    "measure_statistics",
    "measure_statistics_stable",
    "graph_from_statistics",
]


@dataclass(frozen=True)
class MeasuredStatistics:
    """Measured per-operator cost (CPU s/tuple) and selectivity."""

    costs: Dict[str, float]
    selectivities: Dict[str, float]
    tuples_processed: Dict[str, int]

    def coverage(self) -> float:
        """Fraction of operators that processed at least one tuple."""
        if not self.tuples_processed:
            return 0.0
        seen = sum(1 for v in self.tuples_processed.values() if v > 0)
        return seen / len(self.tuples_processed)


def measure_statistics(
    graph: QueryGraph,
    rates: Sequence[float],
    duration: float = 30.0,
    num_nodes: int = 4,
    seed: Optional[int] = None,
) -> MeasuredStatistics:
    """Run a trial placement and harvest operator statistics.

    Uses a random, count-balanced placement (what the paper does before it
    has any statistics to plan with) and drives the graph at ``rates`` for
    ``duration`` simulated seconds.
    """
    # Imported here: placement/simulator already import repro.graphs.
    from ..core.load_model import build_load_model
    from ..placement.random_placer import RandomPlacer
    from ..simulator.engine import Simulator

    model = build_load_model(graph)
    placement = RandomPlacer(seed=seed).place(model, [1.0] * num_nodes)
    result = Simulator(placement, step_seconds=0.1).run(
        rates=rates, duration=duration
    )
    costs, selectivities, counts = {}, {}, {}
    for name, stats in result.operator_stats.items():
        costs[name] = stats.measured_cost
        selectivities[name] = stats.measured_selectivity
        counts[name] = stats.tuples_in
    return MeasuredStatistics(
        costs=costs, selectivities=selectivities, tuples_processed=counts
    )


def measure_statistics_stable(
    graph: QueryGraph,
    rates: Sequence[float],
    tolerance: float = 0.02,
    chunk_duration: float = 10.0,
    max_duration: float = 300.0,
    num_nodes: int = 4,
    seed: Optional[int] = None,
) -> MeasuredStatistics:
    """Run trials until the statistics stabilize (the paper's
    "sufficiently long time").

    Doubles nothing and guesses nothing: keeps extending the trial in
    ``chunk_duration`` increments (with Poisson arrivals, so estimates
    genuinely fluctuate) until no operator's selectivity estimate moved
    by more than ``tolerance`` between consecutive rounds, or
    ``max_duration`` is hit.  Raises if an operator never sees traffic —
    a trial at those rates cannot characterize it.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")
    if chunk_duration <= 0 or max_duration < chunk_duration:
        raise ValueError(
            "need 0 < chunk_duration <= max_duration"
        )
    from ..core.load_model import build_load_model
    from ..placement.random_placer import RandomPlacer
    from ..simulator.engine import Simulator

    model = build_load_model(graph)
    placement = RandomPlacer(seed=seed).place(model, [1.0] * num_nodes)
    previous: Optional[Dict[str, float]] = None
    duration = chunk_duration
    while True:
        result = Simulator(
            placement,
            step_seconds=0.1,
            arrival_kind="poisson",
            seed=seed if seed is not None else 0,
        ).run(rates=rates, duration=duration)
        current = {
            name: stats.measured_selectivity
            for name, stats in result.operator_stats.items()
        }
        if previous is not None:
            drift = max(
                abs(current[name] - previous[name])
                for name in current
            )
            if drift <= tolerance:
                break
        if duration >= max_duration:
            break
        previous = current
        duration = min(duration + chunk_duration, max_duration)

    unseen = [
        name
        for name, stats in result.operator_stats.items()
        if stats.tuples_in == 0
    ]
    if unseen:
        raise RuntimeError(
            f"operators saw no traffic during {duration:g}s of trials: "
            f"{unseen}; raise the trial rates"
        )
    costs, selectivities, counts = {}, {}, {}
    for name, stats in result.operator_stats.items():
        costs[name] = stats.measured_cost
        selectivities[name] = stats.measured_selectivity
        counts[name] = stats.tuples_in
    return MeasuredStatistics(
        costs=costs, selectivities=selectivities, tuples_processed=counts
    )


def graph_from_statistics(
    graph: QueryGraph, statistics: MeasuredStatistics
) -> QueryGraph:
    """Clone ``graph`` with measured statistics substituted for true ones.

    Operators that processed no tuples keep their declared statistics (the
    paper runs trials "sufficiently long" for this not to happen; tests
    exercise both paths).  Joins keep their structural window but take the
    measured per-pair cost only if tuples flowed.
    """
    clone = QueryGraph(name=f"{graph.name}/measured")
    for input_name in graph.input_names:
        clone.add_input(input_name)
    for op in graph.operators():
        clone.add_operator(
            _remeasured(op, statistics),
            list(graph.inputs_of(op.name)),
            output_name=graph.output_of(op.name).name,
        )
    return clone


def _remeasured(op: Operator, statistics: MeasuredStatistics) -> Operator:
    seen = statistics.tuples_processed.get(op.name, 0) > 0
    if not seen:
        return op
    cost = statistics.costs[op.name]
    selectivity = statistics.selectivities[op.name]
    if isinstance(op, WindowJoin):
        # Measured cost is per input tuple; the join's model parameter is
        # per pair, which the probe cannot separate from the window
        # population — keep declared parameters (matches the paper, which
        # treats joins analytically via linearization).
        return op
    if isinstance(op, VariableSelectivityOp):
        return VariableSelectivityOp(
            op.name, cost=cost, nominal_selectivity=selectivity
        )
    if isinstance(op, LinearOperator):
        arity = op.arity
        if arity == 1:
            return LinearOperator(
                op.name, costs=(cost,), selectivities=(selectivity,)
            )
        # Multi-input: measured aggregate cost is spread per port in
        # proportion to the declared per-port costs.
        declared = sum(op.costs)
        shares = (
            [c / declared for c in op.costs]
            if declared > 0
            else [1.0 / arity] * arity
        )
        return LinearOperator(
            op.name,
            costs=tuple(cost * arity * s for s in shares),
            selectivities=op.selectivities,
        )
    return op
