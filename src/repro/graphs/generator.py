"""Query-graph generators used throughout the evaluation.

Reproduces the workload construction of Section 7.1:

* random query graphs generated "as a collection of operator trees rooted
  at input operators", with one to three downstream operators per tree
  node chosen with equal probability, and the same number of operators per
  tree;
* *delay* operators whose per-tuple processing cost is uniform in
  [0.1 ms, 1 ms] CPU time; half of the operators have selectivity one and
  the other half selectivities uniform in [0.5, 1];
* an aggregation-heavy network-traffic-monitoring graph (the motivating
  application);
* windowed-join graphs for the non-linear experiments of Section 6.2;
* the worked examples of the paper (Figure 4 / Example 2 and Example 3),
  used as ground truth in unit tests.

Costs are expressed in CPU *seconds* per tuple, so a node with capacity 1.0
is a machine fully dedicated to stream processing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .operators import (
    Aggregate,
    Delay,
    Filter,
    Map,
    Union,
    VariableSelectivityOp,
    WindowJoin,
)
from .query_graph import QueryGraph, Stream

__all__ = [
    "RandomGraphConfig",
    "random_tree_graph",
    "monitoring_graph",
    "join_graph",
    "paper_example_graph",
    "paper_example3_graph",
]

# Per-tuple CPU cost bounds from Section 7.1 ("delay times ... uniformly
# distributed between 0.1 ms to 1 ms"), in seconds.
MIN_DELAY_COST = 1e-4
MAX_DELAY_COST = 1e-3


@dataclass(frozen=True)
class RandomGraphConfig:
    """Parameters of the paper's random-tree workload generator."""

    num_inputs: int = 5
    operators_per_tree: int = 20
    min_fanout: int = 1
    max_fanout: int = 3
    min_cost: float = MIN_DELAY_COST
    max_cost: float = MAX_DELAY_COST
    min_selectivity: float = 0.5
    max_selectivity: float = 1.0
    unit_selectivity_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("need at least one input stream")
        if self.operators_per_tree < 1:
            raise ValueError("each tree needs at least one operator")
        if not (1 <= self.min_fanout <= self.max_fanout):
            raise ValueError("fanout bounds must satisfy 1 <= min <= max")
        if not (0 < self.min_cost <= self.max_cost):
            raise ValueError("cost bounds must satisfy 0 < min <= max")
        if not (0 < self.min_selectivity <= self.max_selectivity <= 1):
            raise ValueError("selectivity bounds must lie in (0, 1]")
        if not (0 <= self.unit_selectivity_fraction <= 1):
            raise ValueError("unit_selectivity_fraction must be in [0, 1]")


def _random_delay(
    name: str, rng: random.Random, config: RandomGraphConfig
) -> Delay:
    """One synthetic delay operator with the paper's cost/selectivity mix."""
    cost = rng.uniform(config.min_cost, config.max_cost)
    if rng.random() < config.unit_selectivity_fraction:
        selectivity = 1.0
    else:
        selectivity = rng.uniform(config.min_selectivity, config.max_selectivity)
    return Delay(name, cost=cost, selectivity=selectivity)


def random_tree_graph(
    config: RandomGraphConfig = RandomGraphConfig(),
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> QueryGraph:
    """Generate the paper's random workload: one operator tree per input.

    Each tree is grown breadth-first from its input stream; every stream on
    the frontier spawns between ``min_fanout`` and ``max_fanout`` downstream
    operators (equal probability), truncated so each tree holds exactly
    ``operators_per_tree`` operators.
    """
    rng = rng if rng is not None else random.Random(seed)
    graph = QueryGraph(name=f"random-{config.num_inputs}x{config.operators_per_tree}")
    counter = 0
    for k in range(config.num_inputs):
        root = graph.add_input(f"I{k}")
        frontier: List[Stream] = [root]
        remaining = config.operators_per_tree
        while remaining > 0:
            stream = frontier.pop(0)
            fanout = rng.randint(config.min_fanout, config.max_fanout)
            fanout = min(fanout, remaining)
            for _ in range(fanout):
                op = _random_delay(f"op{counter}", rng, config)
                counter += 1
                out = graph.add_operator(op, [stream])
                frontier.append(out)
                remaining -= 1
    return graph


def monitoring_graph(
    num_links: int = 3,
    seed: Optional[int] = None,
) -> QueryGraph:
    """Aggregation-heavy network-traffic monitoring workload.

    One input stream per monitored link.  Each link's packets are filtered
    (protocol of interest), mapped (header normalization), then aggregated
    over a fast and a slow window; per-link alert filters watch the fast
    aggregate, and a cross-link union feeds a global top-talkers aggregate.
    Costs are drawn deterministically from ``seed`` so the graph is
    reproducible.
    """
    if num_links < 1:
        raise ValueError("need at least one monitored link")
    rng = random.Random(seed if seed is not None else 7)
    graph = QueryGraph(name=f"monitoring-{num_links}")
    fast_aggregates = []
    for k in range(num_links):
        link = graph.add_input(f"link{k}")
        flt = graph.add_operator(
            Filter(f"proto_filter{k}", cost=rng.uniform(1e-4, 3e-4),
                   selectivity=rng.uniform(0.5, 0.9)),
            [link],
        )
        normalized = graph.add_operator(
            Map(f"normalize{k}", cost=rng.uniform(1e-4, 4e-4)), [flt]
        )
        fast = graph.add_operator(
            Aggregate(f"agg_fast{k}", cost=rng.uniform(2e-4, 6e-4),
                      selectivity=0.2),
            [normalized],
        )
        graph.add_operator(
            Aggregate(f"agg_slow{k}", cost=rng.uniform(2e-4, 6e-4),
                      selectivity=0.05),
            [normalized],
        )
        graph.add_operator(
            Filter(f"alert{k}", cost=rng.uniform(1e-4, 2e-4),
                   selectivity=0.1),
            [fast],
        )
        fast_aggregates.append(fast)
    if num_links >= 2:
        union = graph.add_operator(
            Union("merge_links",
                  costs=[rng.uniform(5e-5, 1.5e-4)] * num_links),
            fast_aggregates,
        )
        graph.add_operator(
            Aggregate("top_talkers", cost=rng.uniform(3e-4, 8e-4),
                      selectivity=0.1),
            [union],
        )
    return graph


def join_graph(
    num_join_pairs: int = 2,
    downstream_per_join: int = 3,
    window: float = 0.01,
    seed: Optional[int] = None,
) -> QueryGraph:
    """Windowed-join workload for the non-linear experiments (Section 6.2).

    Each pair of input streams is pre-filtered and joined with a time
    window; a small chain of delay operators consumes each join output.
    """
    if num_join_pairs < 1:
        raise ValueError("need at least one join pair")
    if downstream_per_join < 0:
        raise ValueError("downstream_per_join must be >= 0")
    rng = random.Random(seed if seed is not None else 11)
    graph = QueryGraph(name=f"joins-{num_join_pairs}")
    config = RandomGraphConfig()
    counter = 0
    for p in range(num_join_pairs):
        left = graph.add_input(f"L{p}")
        right = graph.add_input(f"R{p}")
        fl = graph.add_operator(
            Filter(f"prefilter_l{p}", cost=rng.uniform(1e-4, 3e-4),
                   selectivity=rng.uniform(0.6, 1.0)),
            [left],
        )
        fr = graph.add_operator(
            Filter(f"prefilter_r{p}", cost=rng.uniform(1e-4, 3e-4),
                   selectivity=rng.uniform(0.6, 1.0)),
            [right],
        )
        out = graph.add_operator(
            WindowJoin(f"join{p}", cost_per_pair=rng.uniform(2e-4, 5e-4),
                       selectivity=rng.uniform(0.05, 0.2), window=window),
            [fl, fr],
        )
        for _ in range(downstream_per_join):
            op = _random_delay(f"jop{counter}", rng, config)
            counter += 1
            out = graph.add_operator(op, [out])
    return graph


def paper_example_graph() -> QueryGraph:
    """The query graph of Figure 4 with Example 2's constants.

    Two chains: ``I1 -> o1(c=4, s=1) -> o2(c=6)`` and
    ``I2 -> o3(c=9, s=0.5) -> o4(c=4)``, giving the operator load
    coefficient matrix ``L^o = [[4,0],[6,0],[0,9],[0,2]]``
    (column order ``(I1, I2)``; ``load(o4) = c4*s3*r2 = 2 r2``).
    """
    graph = QueryGraph(name="paper-example")
    i1 = graph.add_input("I1")
    i2 = graph.add_input("I2")
    o1 = graph.add_operator(Delay("o1", cost=4.0, selectivity=1.0), [i1])
    graph.add_operator(Delay("o2", cost=6.0, selectivity=1.0), [o1])
    o3 = graph.add_operator(Delay("o3", cost=9.0, selectivity=0.5), [i2])
    graph.add_operator(Delay("o4", cost=4.0, selectivity=1.0), [o3])
    return graph


def paper_example3_graph(
    join_cost: float = 2.0,
    join_selectivity: float = 0.5,
    window: float = 1.0,
) -> QueryGraph:
    """The non-linear query graph of Example 3 / Figure 13.

    ``o1`` has variable selectivity (its output must be cut), ``o5`` is a
    window join over the outputs of ``o2`` and ``o4``, and ``o6`` consumes
    the join output.  Linearization must introduce exactly two auxiliary
    variables: the output of ``o1`` (``r3``) and the output of ``o5``
    (``r4``).
    """
    graph = QueryGraph(name="paper-example3")
    i1 = graph.add_input("I1")
    i2 = graph.add_input("I2")
    o1 = graph.add_operator(
        VariableSelectivityOp("o1", cost=1.0, nominal_selectivity=0.8), [i1]
    )
    o2 = graph.add_operator(Delay("o2", cost=2.0, selectivity=1.0), [o1])
    o3 = graph.add_operator(Delay("o3", cost=1.5, selectivity=0.7), [i2])
    o4 = graph.add_operator(Delay("o4", cost=1.0, selectivity=1.0), [o3])
    o5 = graph.add_operator(
        WindowJoin("o5", cost_per_pair=join_cost,
                   selectivity=join_selectivity, window=window),
        [o2, o4],
    )
    graph.add_operator(Delay("o6", cost=3.0, selectivity=1.0), [o5])
    return graph
