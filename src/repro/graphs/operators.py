"""Stream-processing operators.

The paper models each continuous-query operator by two statistics gathered
from trial runs (Section 2.2):

* **cost** — average CPU cycles needed to process one input tuple arriving
  on a given input stream, and
* **selectivity** — ratio of an output stream's rate to an input stream's
  rate.

Operators whose output rate is a fixed linear combination of their input
rates (filter, map, union, aggregate, the paper's tunable *delay* operator)
form the *linear* load model of Section 2.2.  Time-window joins are the
canonical *non-linear* operator (Section 6.2): their load is
``c * w * r_u * r_v`` and must be linearized by cutting the query graph.

Every operator produces exactly one output stream.  Fan-out is expressed in
the query graph by letting several downstream operators consume the same
output stream; multi-output computations (e.g. a splitter) are modelled as
several filters reading one stream, which is load-equivalent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "Operator",
    "LinearOperator",
    "Map",
    "Filter",
    "Union",
    "Aggregate",
    "Delay",
    "VariableSelectivityOp",
    "WindowJoin",
]


def _validate_costs(costs: Sequence[float], arity: int) -> Tuple[float, ...]:
    """Check per-input-port costs: one finite non-negative value per port."""
    costs = tuple(float(c) for c in costs)
    if len(costs) != arity:
        raise ValueError(
            f"expected {arity} per-port costs, got {len(costs)}: {costs!r}"
        )
    for c in costs:
        if not math.isfinite(c) or c < 0:
            raise ValueError(f"operator cost must be finite and >= 0, got {c}")
    return costs


def _validate_selectivities(
    selectivities: Sequence[float], arity: int
) -> Tuple[float, ...]:
    """Check per-input-port selectivities: finite and non-negative."""
    sels = tuple(float(s) for s in selectivities)
    if len(sels) != arity:
        raise ValueError(
            f"expected {arity} per-port selectivities, got {len(sels)}: {sels!r}"
        )
    for s in sels:
        if not math.isfinite(s) or s < 0:
            raise ValueError(f"selectivity must be finite and >= 0, got {s}")
    return sels


@dataclass(frozen=True)
class Operator:
    """Base class for all operators.

    Attributes
    ----------
    name:
        Unique identifier within a query graph.
    """

    name: str

    @property
    def arity(self) -> int:
        """Number of input ports."""
        raise NotImplementedError

    @property
    def is_linear(self) -> bool:
        """Whether both load and output rate are linear in the input rates."""
        raise NotImplementedError

    def cost_of_port(self, port: int) -> float:
        """CPU cycles spent per tuple arriving on input ``port``."""
        raise NotImplementedError

    def load(self, input_rates: Sequence[float]) -> float:
        """CPU cycles per unit time at the given input stream rates."""
        raise NotImplementedError

    def output_rate(self, input_rates: Sequence[float]) -> float:
        """Rate of the single output stream at the given input rates."""
        raise NotImplementedError

    def _check_rates(self, input_rates: Sequence[float]) -> Tuple[float, ...]:
        rates = tuple(float(r) for r in input_rates)
        if len(rates) != self.arity:
            raise ValueError(
                f"{self.name}: expected {self.arity} input rates, "
                f"got {len(rates)}"
            )
        for r in rates:
            if not math.isfinite(r) or r < 0:
                raise ValueError(f"{self.name}: rate must be >= 0, got {r}")
        return rates


@dataclass(frozen=True)
class LinearOperator(Operator):
    """Operator with per-port linear cost and selectivity.

    ``load = sum_p costs[p] * rate_p`` and
    ``output_rate = sum_p selectivities[p] * rate_p``.

    This single shape covers every linear operator in the paper: map and
    filter (arity 1), union (arity >= 2, selectivity 1 per port), windowed
    aggregate (arity 1, selectivity < 1 when it compresses), and the
    experimental delay operator with tunable cost and selectivity.
    """

    costs: Tuple[float, ...] = (1.0,)
    selectivities: Tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        arity = len(self.costs)
        if arity < 1:
            raise ValueError(f"{self.name}: operator needs at least one input")
        object.__setattr__(self, "costs", _validate_costs(self.costs, arity))
        object.__setattr__(
            self,
            "selectivities",
            _validate_selectivities(self.selectivities, arity),
        )

    @property
    def arity(self) -> int:
        return len(self.costs)

    @property
    def is_linear(self) -> bool:
        return True

    def cost_of_port(self, port: int) -> float:
        return self.costs[port]

    def load(self, input_rates: Sequence[float]) -> float:
        rates = self._check_rates(input_rates)
        return sum(c * r for c, r in zip(self.costs, rates))

    def output_rate(self, input_rates: Sequence[float]) -> float:
        rates = self._check_rates(input_rates)
        return sum(s * r for s, r in zip(self.selectivities, rates))


class Map(LinearOperator):
    """Stateless per-tuple transform; one output tuple per input tuple."""

    def __init__(self, name: str, cost: float):
        super().__init__(name=name, costs=(cost,), selectivities=(1.0,))


class Filter(LinearOperator):
    """Predicate filter passing a ``selectivity`` fraction of tuples."""

    def __init__(self, name: str, cost: float, selectivity: float):
        if selectivity > 1.0:
            raise ValueError(
                f"{name}: filter selectivity must be <= 1, got {selectivity}"
            )
        super().__init__(name=name, costs=(cost,), selectivities=(selectivity,))


class Union(LinearOperator):
    """Order-insensitive merge of several streams into one."""

    def __init__(self, name: str, costs: Sequence[float]):
        if len(costs) < 2:
            raise ValueError(f"{name}: union needs at least two inputs")
        super().__init__(
            name=name,
            costs=tuple(costs),
            selectivities=(1.0,) * len(costs),
        )


class Aggregate(LinearOperator):
    """Window aggregate emitting ``selectivity`` output tuples per input.

    A tumbling window of ``k`` tuples corresponds to ``selectivity = 1/k``.
    """

    def __init__(self, name: str, cost: float, selectivity: float):
        super().__init__(name=name, costs=(cost,), selectivities=(selectivity,))


class Delay(LinearOperator):
    """The paper's synthetic operator with adjustable cost and selectivity.

    Used throughout Section 7 to build random query graphs whose per-tuple
    processing cost (the busy-wait "delay") and selectivity can be set
    directly.
    """

    def __init__(self, name: str, cost: float, selectivity: float):
        super().__init__(name=name, costs=(cost,), selectivities=(selectivity,))


@dataclass(frozen=True)
class VariableSelectivityOp(Operator):
    """Linear-cost operator whose selectivity is unknown or time-varying.

    Its *load* is linear in its input rate, but its *output* rate cannot be
    written as a constant times the input rate, so the output stream must be
    cut during linearization (operator ``o1`` in the paper's Example 3).
    ``nominal_selectivity`` is used only by the simulator and by rate
    estimation, never by the linear load model.
    """

    cost: float = 1.0
    nominal_selectivity: float = 1.0

    def __post_init__(self) -> None:
        _validate_costs((self.cost,), 1)
        _validate_selectivities((self.nominal_selectivity,), 1)

    @property
    def arity(self) -> int:
        return 1

    @property
    def is_linear(self) -> bool:
        return False

    @property
    def load_is_linear_in_inputs(self) -> bool:
        """Load is still a linear function of the input rate (cost * rate)."""
        return True

    def cost_of_port(self, port: int) -> float:
        if port != 0:
            raise IndexError(port)
        return self.cost

    def load(self, input_rates: Sequence[float]) -> float:
        (rate,) = self._check_rates(input_rates)
        return self.cost * rate

    def output_rate(self, input_rates: Sequence[float]) -> float:
        (rate,) = self._check_rates(input_rates)
        return self.nominal_selectivity * rate


@dataclass(frozen=True)
class WindowJoin(Operator):
    """Time-window-based join (Section 6.2, Example 3).

    ``window`` is the *total* temporal extent: tuples match when their
    timestamps differ by at most ``window / 2``.  With input rates ``r_u``
    and ``r_v``, the number of tuple pairs processed per unit time is then
    ``window * r_u * r_v``;
    the load is ``cost_per_pair`` cycles per pair and the output rate is
    ``selectivity`` tuples per pair:

    * ``load = cost_per_pair * window * r_u * r_v``
    * ``output_rate = selectivity * window * r_u * r_v``

    Hence ``load = (cost_per_pair / selectivity) * output_rate`` — linear in
    the *output* rate, which is why cutting the output stream linearizes the
    model.
    """

    cost_per_pair: float = 1.0
    selectivity: float = 1.0
    window: float = 1.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.cost_per_pair) or self.cost_per_pair < 0:
            raise ValueError(
                f"{self.name}: cost_per_pair must be >= 0, "
                f"got {self.cost_per_pair}"
            )
        if not math.isfinite(self.selectivity) or self.selectivity <= 0:
            raise ValueError(
                f"{self.name}: join selectivity must be > 0 (load is "
                f"expressed as (c/s) * output rate), got {self.selectivity}"
            )
        if not math.isfinite(self.window) or self.window <= 0:
            raise ValueError(
                f"{self.name}: window must be > 0, got {self.window}"
            )

    @property
    def arity(self) -> int:
        return 2

    @property
    def is_linear(self) -> bool:
        return False

    @property
    def load_is_linear_in_inputs(self) -> bool:
        return False

    @property
    def load_per_output_tuple(self) -> float:
        """CPU cycles per *output* tuple: the ``c/s`` factor of Example 3."""
        return self.cost_per_pair / self.selectivity

    def cost_of_port(self, port: int) -> float:
        # Per-input-tuple cost depends on the opposite stream's rate and is
        # therefore not a constant; callers needing per-tuple costs must go
        # through the linearized model.
        raise TypeError(
            f"{self.name}: a window join has no constant per-tuple cost; "
            "linearize the query graph instead"
        )

    def pairs_per_unit_time(self, input_rates: Sequence[float]) -> float:
        r_u, r_v = self._check_rates(input_rates)
        return self.window * r_u * r_v

    def load(self, input_rates: Sequence[float]) -> float:
        return self.cost_per_pair * self.pairs_per_unit_time(input_rates)

    def output_rate(self, input_rates: Sequence[float]) -> float:
        return self.selectivity * self.pairs_per_unit_time(input_rates)
