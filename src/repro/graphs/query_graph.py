"""Acyclic query graphs (data-flow networks) of stream operators.

A :class:`QueryGraph` is a DAG whose sources are *system input streams*
(``I_1 .. I_d`` in the paper) and whose internal vertices are operators.
Each operator consumes one existing stream per input port and produces
exactly one output stream; several operators may consume the same stream
(fan-out).  Graphs are acyclic by construction: an operator can only be
connected to streams that already exist.

The graph is the unit the placement algorithms work on; it knows nothing
about nodes or placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .operators import Operator, WindowJoin

__all__ = ["Stream", "QueryGraph", "Arc"]


@dataclass(frozen=True)
class Stream:
    """A named data stream: either a system input or an operator's output.

    Attributes
    ----------
    name:
        Unique stream name within the graph.
    producer:
        Name of the operator producing it, or ``None`` for a system input.
    input_index:
        Position among the system inputs (``k`` for ``I_k``) if this is a
        system input stream, otherwise ``None``.
    """

    name: str
    producer: Optional[str] = None
    input_index: Optional[int] = None

    @property
    def is_input(self) -> bool:
        return self.producer is None


@dataclass(frozen=True)
class Arc:
    """A producer→consumer operator pair (the unit operator clustering
    contracts, Section 6.3)."""

    producer: str
    consumer: str
    stream: str


class QueryGraph:
    """Mutable builder and container for an acyclic operator network."""

    def __init__(self, name: str = "query") -> None:
        self.name = name
        self._streams: Dict[str, Stream] = {}
        self._operators: Dict[str, Operator] = {}
        # Per-operator ordered input stream names.
        self._op_inputs: Dict[str, Tuple[str, ...]] = {}
        # Stream name -> names of consuming operators, in insertion order.
        self._consumers: Dict[str, List[str]] = {}
        self._input_order: List[str] = []
        # Operators in insertion order; insertion order is topological
        # because inputs must exist before the operator is added.
        self._op_order: List[str] = []
        # Operator name -> its output stream name.
        self._op_output: Dict[str, str] = {}
        # Provenance of data-partitioning rewrites: base operator name
        # -> graphs.partition.PartitionGroup.  Maintained by the rewrite
        # helpers; empty for graphs that were never partitioned.  (Typed
        # loosely to avoid a circular import with graphs.partition.)
        self.partition_groups: Dict[str, Any] = {}

    # ------------------------------------------------------------------ build

    def add_input(self, name: str) -> Stream:
        """Register system input stream ``name`` and return it."""
        self._check_fresh_stream(name)
        stream = Stream(name=name, input_index=len(self._input_order))
        self._streams[name] = stream
        self._consumers[name] = []
        self._input_order.append(name)
        return stream

    def add_operator(
        self,
        operator: Operator,
        inputs: Sequence[object],
        output_name: Optional[str] = None,
    ) -> Stream:
        """Attach ``operator`` to existing streams and return its output.

        ``inputs`` may hold :class:`Stream` objects or stream names; its
        length must equal the operator's arity.  The output stream is named
        ``output_name`` or ``"<operator>.out"`` by default.
        """
        if operator.name in self._operators:
            raise ValueError(f"duplicate operator name: {operator.name!r}")
        input_names = tuple(self._resolve_stream(s).name for s in inputs)
        if len(input_names) != operator.arity:
            raise ValueError(
                f"{operator.name}: operator has arity {operator.arity} but "
                f"{len(input_names)} input stream(s) were given"
            )
        out_name = output_name or f"{operator.name}.out"
        self._check_fresh_stream(out_name)

        self._operators[operator.name] = operator
        self._op_inputs[operator.name] = input_names
        self._op_order.append(operator.name)
        for s in input_names:
            self._consumers[s].append(operator.name)
        out = Stream(name=out_name, producer=operator.name)
        self._streams[out_name] = out
        self._consumers[out_name] = []
        self._op_output[operator.name] = out_name
        return out

    def _check_fresh_stream(self, name: str) -> None:
        if name in self._streams:
            raise ValueError(f"duplicate stream name: {name!r}")

    def _resolve_stream(self, ref: object) -> Stream:
        name = ref.name if isinstance(ref, Stream) else str(ref)
        try:
            return self._streams[name]
        except KeyError:
            raise KeyError(f"unknown stream: {name!r}") from None

    # ------------------------------------------------------------ inspection

    @property
    def num_inputs(self) -> int:
        """``d`` — the number of system input streams."""
        return len(self._input_order)

    @property
    def num_operators(self) -> int:
        """``m`` — the number of operators."""
        return len(self._op_order)

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(self._input_order)

    @property
    def operator_names(self) -> Tuple[str, ...]:
        """Operator names in topological (insertion) order."""
        return tuple(self._op_order)

    def operators(self) -> Iterator[Operator]:
        """Operators in topological order."""
        for name in self._op_order:
            yield self._operators[name]

    def operator(self, name: str) -> Operator:
        try:
            return self._operators[name]
        except KeyError:
            raise KeyError(f"unknown operator: {name!r}") from None

    def stream(self, name: str) -> Stream:
        return self._resolve_stream(name)

    def streams(self) -> Iterator[Stream]:
        return iter(self._streams.values())

    def inputs_of(self, operator_name: str) -> Tuple[str, ...]:
        """Ordered input stream names of an operator."""
        try:
            return self._op_inputs[operator_name]
        except KeyError:
            raise KeyError(f"unknown operator: {operator_name!r}") from None

    def output_of(self, operator_name: str) -> Stream:
        """The single output stream of an operator."""
        self.operator(operator_name)
        return self._streams[self._op_output[operator_name]]

    def consumers_of(self, stream_name: str) -> Tuple[str, ...]:
        """Names of operators consuming a stream (may be empty for sinks)."""
        self._resolve_stream(stream_name)
        return tuple(self._consumers[stream_name])

    def upstream_operators(self, operator_name: str) -> Tuple[str, ...]:
        """Operators whose outputs feed directly into ``operator_name``."""
        producers = []
        for s in self.inputs_of(operator_name):
            producer = self._streams[s].producer
            if producer is not None:
                producers.append(producer)
        return tuple(producers)

    def downstream_operators(self, operator_name: str) -> Tuple[str, ...]:
        """Operators directly consuming ``operator_name``'s output."""
        return self.consumers_of(self.output_of(operator_name).name)

    def arcs(self) -> List[Arc]:
        """All operator→operator arcs (excluding arcs from system inputs)."""
        result = []
        for name in self._op_order:
            for s in self._op_inputs[name]:
                producer = self._streams[s].producer
                if producer is not None:
                    result.append(Arc(producer=producer, consumer=name, stream=s))
        return result

    def sink_streams(self) -> Tuple[Stream, ...]:
        """Streams with no consumers — the application-facing outputs."""
        return tuple(
            self._streams[s]
            for s in self._streams
            if not self._consumers[s]
        )

    def has_nonlinear_operators(self) -> bool:
        """True if any operator requires linearization (Section 6.2)."""
        return any(not op.is_linear for op in self.operators())

    def join_operators(self) -> Tuple[str, ...]:
        return tuple(
            op.name for op in self.operators() if isinstance(op, WindowJoin)
        )

    # ------------------------------------------------------------ evaluation

    def stream_rates(self, input_rates: Sequence[float]) -> Dict[str, float]:
        """Propagate concrete input rates through the graph.

        Returns the steady-state rate of every stream, using each operator's
        true ``output_rate`` (including non-linear ones).  This is the ground
        truth the linear model approximates.
        """
        if len(input_rates) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input rates, got {len(input_rates)}"
            )
        rates: Dict[str, float] = {
            name: float(r) for name, r in zip(self._input_order, input_rates)
        }
        for name in self._op_order:
            op = self._operators[name]
            in_rates = [rates[s] for s in self._op_inputs[name]]
            rates[self.output_of(name).name] = op.output_rate(in_rates)
        return rates

    def operator_loads(self, input_rates: Sequence[float]) -> Dict[str, float]:
        """True CPU load (cycles per unit time) of each operator."""
        rates = self.stream_rates(input_rates)
        loads: Dict[str, float] = {}
        for name in self._op_order:
            op = self._operators[name]
            in_rates = [rates[s] for s in self._op_inputs[name]]
            loads[name] = op.load(in_rates)
        return loads

    def total_load(self, input_rates: Sequence[float]) -> float:
        """Aggregate CPU demand of the whole graph at the given rates."""
        return sum(self.operator_loads(input_rates).values())

    # ---------------------------------------------------------------- dunder

    def __contains__(self, operator_name: str) -> bool:
        return operator_name in self._operators

    def __len__(self) -> int:
        return self.num_operators

    def __repr__(self) -> str:
        return (
            f"QueryGraph({self.name!r}, inputs={self.num_inputs}, "
            f"operators={self.num_operators})"
        )

    # -------------------------------------------------------------- validate

    def validate(self) -> None:
        """Run internal consistency checks; raises ``AssertionError``."""
        assert len(self._op_order) == len(self._operators)
        seen_streams = set(self._input_order)
        for name in self._op_order:
            for s in self._op_inputs[name]:
                assert s in seen_streams, (
                    f"operator {name} consumes stream {s} defined later"
                )
            seen_streams.add(self.output_of(name).name)
        for stream_name, consumers in self._consumers.items():
            for c in consumers:
                assert stream_name in self._op_inputs[c]


def subgraph_operator_count(graph: QueryGraph, roots: Iterable[str]) -> int:
    """Count operators reachable downstream from the given input streams."""
    reachable = set()
    frontier = list(roots)
    while frontier:
        stream_name = frontier.pop()
        for op_name in graph.consumers_of(stream_name):
            if op_name not in reachable:
                reachable.add(op_name)
                frontier.append(graph.output_of(op_name).name)
    return len(reachable)
