"""Static analysis for ROD artifacts and for this repository itself.

Two cooperating layers (see ``docs/static_analysis.md``):

**Semantic verifiers** check the artifacts the planner consumes and
produces — query graphs, load models, placement plans, experiment
configs — *before* they reach NumPy, turning deep shape errors and
silently-wrong volumes into structured :class:`Diagnostic` records with
stable codes, locations and fix hints.  They gate plan construction
(:meth:`repro.deploy.Deployment.plan`) and back the ``repro-rod check``
CLI subcommand.

**repro-lint** is an AST lint pass over the source tree enforcing
repo invariants generic tools can't: seeded RNGs only, no float-literal
``==`` in load/rate math, no mutable default arguments, ``__all__`` in
every public module.

**repro.check.flow** (REPRO6xx) layers a CFG + def-use dataflow engine
on top: set-iteration order reaching returns and scores, wall-clock
reads in simulation paths, shared mutable state and shared RNGs in
parallel workers, order-dependent float accumulation, and static
conformance of ``Tracer.emit``/metric registrations against the obs
schema registry.  Both lint packs share one ``noqa`` baseline
(:mod:`repro.check.suppress`), with stale suppressions reported as
``REPRO507`` and pruned by ``repro-lint --prune-baseline``.

Quick use::

    from repro.check import check_artifact
    check_artifact(graph, model, placement).raise_if_errors()
"""

from .diagnostics import CheckError, CheckReport, Diagnostic, Severity
from .runner import CheckRunner, check_artifact, default_runner
from .verify_graph import check_graph
from .verify_model import check_model
from .verify_plan import check_placement, check_plan_document
from .verify_config import check_experiment_config
from .artifacts import check_document, check_paths, classify_document
from .lint import LINT_CODES, lint_paths, lint_source, prune_baseline_paths
from .flow import FLOW_CODES, FunctionFlow, analyze_module, build_cfg
from .suppress import NoqaMarker, find_markers

__all__ = [
    "CheckError",
    "CheckReport",
    "CheckRunner",
    "Diagnostic",
    "FLOW_CODES",
    "FunctionFlow",
    "LINT_CODES",
    "NoqaMarker",
    "Severity",
    "analyze_module",
    "build_cfg",
    "check_artifact",
    "check_document",
    "check_experiment_config",
    "check_graph",
    "check_model",
    "check_paths",
    "check_placement",
    "check_plan_document",
    "classify_document",
    "default_runner",
    "find_markers",
    "lint_paths",
    "lint_source",
    "prune_baseline_paths",
]
