"""``repro-lint`` — AST lint rules for repo-specific invariants (``REPRO5xx``).

Generic tools cannot know this repo's contracts; these rules encode the
ones that have bitten stream-processing reproductions before:

* **REPRO501 unseeded-rng** (error) — no ``random.Random()`` without a
  seed and no global-state RNG calls (``random.random()``,
  ``np.random.seed(...)``, ``np.random.uniform(...)``, ...).  Every
  experiment must be replayable from its seed.
* **REPRO502 float-equality** (error) — no ``==``/``!=`` against float
  literals in load/rate math; use ``math.isclose`` or an explicit
  tolerance.  ``assert`` statements are exempt: tests state exact
  IEEE-representable oracles on purpose.
* **REPRO503 mutable-default** (error) — no mutable default arguments.
* **REPRO504 missing-all** (warning) — every public module under
  ``src/`` defines ``__all__``.
* **REPRO505 print-in-library** (error) — no ``print()`` in library
  code under ``repro`` (console entry points ``cli.py`` and the text
  renderer ``textplot.py`` are exempt, as are tests and benchmarks).
  Library code reports through ``repro.obs.log.get_logger(__name__)``
  so ``-v``/``-q`` and log capture work uniformly.
* **REPRO506 scalar-loop-in-kernel** (warning) — no per-element Python
  loops over array data in the volume kernel
  (``src/repro/core/volume/``): a ``for`` over ``range(...)`` whose
  body subscripts with the loop variable is almost always a vectorizable
  hot loop there.  Intentional exceptions (digit-position recurrences,
  sieve striding) carry a justified ``noqa``.

Suppress a finding by appending ``# noqa`` or ``# noqa: REPRO502`` to
the offending line, with a justification comment.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .diagnostics import CheckReport, Diagnostic, Severity

__all__ = [
    "LINT_CODES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "main",
]

#: code -> (severity, one-line summary), the ``repro-lint`` rule registry.
LINT_CODES = {
    "REPRO501": (Severity.ERROR, "unseeded or global-state RNG"),
    "REPRO502": (Severity.ERROR, "float literal compared with ==/!="),
    "REPRO503": (Severity.ERROR, "mutable default argument"),
    "REPRO504": (Severity.WARNING, "public module lacks __all__"),
    "REPRO505": (Severity.ERROR, "print() in library code"),
    "REPRO506": (Severity.WARNING, "per-element Python loop in volume kernel"),
}

#: directories (as ``path.parts`` suffixes) whose modules must not loop
#: per-element over arrays — the QMC volume kernel is the repro's inner
#: loop, so REPRO506 is scoped to it.
_SCALAR_LOOP_SCOPE = ("core", "volume")

#: module stems under ``repro`` allowed to print: the console entry
#: point and the ASCII renderer whose whole job is terminal output.
_PRINT_EXEMPT_STEMS = frozenset({"cli", "textplot"})

_SKIP_DIRS = {".git", "__pycache__", "build", "dist", ".venv", "node_modules"}

#: ``random`` module functions that mutate/consume the hidden global state.
_RANDOM_STATE_FUNCS = frozenset({
    "random", "seed", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "expovariate", "shuffle", "choice", "choices",
    "sample", "betavariate", "triangular", "paretovariate", "getrandbits",
})

#: ``np.random`` attributes that are fine to call (seedable constructors).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "Philox",
})


def _is_test_path(path: Path) -> bool:
    parts = set(path.parts)
    return (
        "tests" in parts
        or "benchmarks" in parts
        or path.stem.startswith("test_")
        or path.stem == "conftest"
    )


def _noqa_codes(line: str) -> Optional[List[str]]:
    """Codes suppressed on this line, ``[]`` meaning "all" (bare noqa)."""
    marker = "# noqa"
    index = line.find(marker)
    if index < 0:
        return None
    rest = line[index + len(marker):]
    if rest.startswith(":"):
        codes = rest[1:].split("#")[0]
        return [c.strip().upper() for c in codes.split(",") if c.strip()]
    return []


class _LintVisitor(ast.NodeVisitor):
    """Single-pass visitor collecting REPRO501-503 findings."""

    def __init__(self, forbid_print: bool = False,
                 flag_scalar_loops: bool = False) -> None:
        self.findings: List[Dict[str, object]] = []
        self._assert_depth = 0
        self.forbid_print = forbid_print
        self.flag_scalar_loops = flag_scalar_loops

    def _report(self, code: str, node: ast.AST, message: str,
                fix_hint: str) -> None:
        self.findings.append({
            "code": code,
            "lineno": getattr(node, "lineno", 1),
            "message": message,
            "fix_hint": fix_hint,
        })

    # ----------------------------------------------------------- REPRO501

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.forbid_print
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._report(
                "REPRO505", node,
                "print() in library code",
                "log via repro.obs.log.get_logger(__name__) instead",
            )
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "random":
                if func.attr == "Random" and not node.args and not node.keywords:
                    self._report(
                        "REPRO501", node,
                        "random.Random() constructed without a seed",
                        "pass an explicit seed: random.Random(seed)",
                    )
                elif func.attr in _RANDOM_STATE_FUNCS:
                    self._report(
                        "REPRO501", node,
                        f"random.{func.attr}() uses the global RNG state",
                        "use a seeded random.Random(seed) instance",
                    )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and func.attr not in _NP_RANDOM_ALLOWED
            ):
                self._report(
                    "REPRO501", node,
                    f"np.random.{func.attr}() uses numpy's global RNG state",
                    "use np.random.default_rng(seed)",
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- REPRO502

    def visit_Assert(self, node: ast.Assert) -> None:
        self._assert_depth += 1
        self.generic_visit(node)
        self._assert_depth -= 1

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._assert_depth == 0:
            operands = [node.left] + list(node.comparators)
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            has_float = any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            )
            if has_eq and has_float:
                self._report(
                    "REPRO502", node,
                    "float literal compared with ==/!=",
                    "use math.isclose(...) or compare against a tolerance",
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- REPRO503

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._report(
                    "REPRO503", default,
                    "mutable default argument is shared across calls",
                    "default to None and create the value inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    # ----------------------------------------------------------- REPRO506

    @staticmethod
    def _body_subscripts_with(body: Sequence[ast.stmt], name: str) -> bool:
        """Whether any statement indexes something with the given name."""
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Subscript) and any(
                    isinstance(ref, ast.Name) and ref.id == name
                    for ref in ast.walk(node.slice)
                ):
                    return True
        return False

    def visit_For(self, node: ast.For) -> None:
        if (
            self.flag_scalar_loops
            and isinstance(node.target, ast.Name)
            and isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
            and self._body_subscripts_with(node.body, node.target.id)
        ):
            self._report(
                "REPRO506", node,
                "per-element Python loop over array data in the volume "
                "kernel",
                "vectorize with whole-array numpy operations, or add a "
                "justified noqa if the loop is not per-point",
            )
        self.generic_visit(node)


def _module_defines_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                return True
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


def lint_source(source: str, path: Path) -> List[Diagnostic]:
    """Lint one module's source text; returns its diagnostics."""
    location = str(path)
    try:
        tree = ast.parse(source, filename=location)
    except SyntaxError as exc:
        return [Diagnostic(
            code="REPRO500",
            severity=Severity.ERROR,
            message=f"cannot parse module: {exc.msg}",
            location=f"{location}:{exc.lineno or 1}",
        )]

    forbid_print = (
        "repro" in path.parts
        and path.stem not in _PRINT_EXEMPT_STEMS
        and not _is_test_path(path)
    )
    parent_parts = path.parts[:-1]
    flag_scalar_loops = (
        parent_parts[-len(_SCALAR_LOOP_SCOPE):] == _SCALAR_LOOP_SCOPE
        and not _is_test_path(path)
    )
    visitor = _LintVisitor(
        forbid_print=forbid_print, flag_scalar_loops=flag_scalar_loops
    )
    visitor.visit(tree)

    findings = visitor.findings
    if (
        "src" in path.parts
        and not path.stem.startswith("_")
        and not _is_test_path(path)
        and not _module_defines_all(tree)
    ):
        findings.append({
            "code": "REPRO504",
            "lineno": 1,
            "message": "public module does not define __all__",
            "fix_hint": "declare __all__ with the module's public names",
        })

    lines = source.splitlines()
    diagnostics = []
    for finding in sorted(findings, key=lambda f: (f["lineno"], f["code"])):
        code = str(finding["code"])
        lineno = int(finding["lineno"])  # type: ignore[arg-type]
        line = lines[lineno - 1] if 0 < lineno <= len(lines) else ""
        suppressed = _noqa_codes(line)
        if suppressed is not None and (not suppressed or code in suppressed):
            continue
        severity, _ = LINT_CODES.get(code, (Severity.ERROR, ""))
        diagnostics.append(Diagnostic(
            code=code,
            severity=severity,
            message=str(finding["message"]),
            location=f"{location}:{lineno}",
            fix_hint=str(finding["fix_hint"]) if finding.get("fix_hint") else None,
        ))
    return diagnostics


def lint_file(path: Path) -> List[Diagnostic]:
    """Lint one ``.py`` file from disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Diagnostic(
            code="REPRO500",
            severity=Severity.ERROR,
            message=f"cannot read file: {exc}",
            location=str(path),
        )]
    return lint_source(source, path)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    result = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    result.append(candidate)
        elif path.suffix == ".py":
            result.append(path)
    return result


def lint_paths(paths: Sequence[object]) -> CheckReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = CheckReport()
    for path in iter_python_files(Path(str(p)) for p in paths):
        report.extend(lint_file(path))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-lint [paths...] [--fail-on SEVERITY]`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint for repo-specific invariants (REPRO5xx)",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint")
    parser.add_argument("--fail-on", default="warning",
                        choices=("info", "warning", "error"),
                        help="lowest severity that fails the run")
    args = parser.parse_args(argv)

    report = lint_paths(args.paths)
    threshold = Severity.parse(args.fail_on)
    failing = report.at_least(threshold)
    for diagnostic in report:
        # This *is* the console entry point; stdout is its interface.
        print(diagnostic.format())  # noqa: REPRO505
    errors, warnings, infos = report.counts()
    print(f"repro-lint: {errors} error(s), {warnings} warning(s), "  # noqa: REPRO505
          f"{infos} info(s)")
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
