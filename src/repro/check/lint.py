"""``repro-lint`` — AST lint rules for repo-specific invariants (``REPRO5xx``).

Generic tools cannot know this repo's contracts; these rules encode the
ones that have bitten stream-processing reproductions before:

* **REPRO501 unseeded-rng** (error) — no ``random.Random()`` without a
  seed and no global-state RNG calls (``random.random()``,
  ``np.random.seed(...)``, ``np.random.uniform(...)``, ...).  Every
  experiment must be replayable from its seed.
* **REPRO502 float-equality** (error) — no ``==``/``!=`` against float
  literals in load/rate math; use ``math.isclose`` or an explicit
  tolerance.  ``assert`` statements are exempt: tests state exact
  IEEE-representable oracles on purpose.
* **REPRO503 mutable-default** (error) — no mutable default arguments.
* **REPRO504 missing-all** (warning) — every public module under
  ``src/`` defines ``__all__``.
* **REPRO505 print-in-library** (error) — no ``print()`` in library
  code under ``repro`` (console entry points ``cli.py`` and the text
  renderer ``textplot.py`` are exempt, as are tests and benchmarks).
  Library code reports through ``repro.obs.log.get_logger(__name__)``
  so ``-v``/``-q`` and log capture work uniformly.
* **REPRO506 scalar-loop-in-kernel** (warning) — no per-element Python
  loops over array data in the volume kernel
  (``src/repro/core/volume/``): a ``for`` over ``range(...)`` whose
  body subscripts with the loop variable is almost always a vectorizable
  hot loop there.  Intentional exceptions (digit-position recurrences,
  sieve striding) carry a justified ``noqa``.
* **REPRO507 unused-suppression** (warning) — a ``noqa`` entry that no
  longer suppresses any finding of a rule that ran.  Stale baselines
  hide future regressions; ``repro-lint --prune-baseline`` rewrites
  them away.
* **REPRO508 dense-alloc-in-placement-loop** (warning) — no dense
  multi-dimensional ``np.zeros``/``np.empty``/``np.ones``/``np.full``
  allocation inside a loop in the placement package
  (``src/repro/placement/``).  Placement searches visit thousands of
  candidates; an ``np.zeros((n_nodes, ...))`` per candidate is the
  allocation pattern that made flat search collapse at 1000 nodes —
  hoist the buffer or patch deltas instead (see
  ``docs/performance.md``).  Loops that genuinely need a fresh dense
  buffer per iteration carry a justified ``noqa``.

With ``--flow`` (the default) the dataflow rule pack
(:mod:`repro.check.flow`, ``REPRO600``-``REPRO611``) runs over the
same files and shares the same ``noqa`` baseline; ``--jobs N`` fans
file analysis out over worker processes via :mod:`repro.parallel`.

Suppress a finding by appending ``# noqa`` or ``# noqa: REPRO502`` to
the offending line, with a justification comment.

Exit codes: **0** clean, **1** findings at or above ``--fail-on``,
**2** parse or internal errors (the offending file is printed).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import CheckReport, Diagnostic, Severity
from .flow import FLOW_CODES, analyze_module
from .flow.rules import active_flow_codes
from .suppress import (
    apply_suppressions,
    find_markers,
    prune_markers,
    stale_codes,
)

__all__ = [
    "LINT_CODES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "prune_baseline_paths",
    "main",
]

#: code -> (severity, one-line summary), the ``repro-lint`` rule registry.
LINT_CODES = {
    "REPRO501": (Severity.ERROR, "unseeded or global-state RNG"),
    "REPRO502": (Severity.ERROR, "float literal compared with ==/!="),
    "REPRO503": (Severity.ERROR, "mutable default argument"),
    "REPRO504": (Severity.WARNING, "public module lacks __all__"),
    "REPRO505": (Severity.ERROR, "print() in library code"),
    "REPRO506": (Severity.WARNING, "per-element Python loop in volume kernel"),
    "REPRO507": (Severity.WARNING, "unused noqa suppression"),
    "REPRO508": (Severity.WARNING,
                 "dense array allocation in placement loop"),
}

#: Severity lookup across both rule packs.
_ALL_CODES = {**LINT_CODES, **FLOW_CODES}

#: directories (as ``path.parts`` suffixes) whose modules must not loop
#: per-element over arrays — the QMC volume kernel is the repro's inner
#: loop, so REPRO506 is scoped to it.
_SCALAR_LOOP_SCOPE = ("core", "volume")

#: directories (as ``path.parts`` suffixes) whose loops must not allocate
#: dense multi-dimensional arrays per iteration — placement searches
#: score thousands of candidates, so REPRO508 is scoped to them.
_DENSE_ALLOC_SCOPE = ("repro", "placement")

#: numpy constructors whose multi-dimensional form REPRO508 flags.
_DENSE_ALLOC_FUNCS = frozenset({"zeros", "empty", "ones", "full"})

#: module stems under ``repro`` allowed to print: the console entry
#: point and the ASCII renderer whose whole job is terminal output.
_PRINT_EXEMPT_STEMS = frozenset({"cli", "textplot"})

_SKIP_DIRS = {".git", "__pycache__", "build", "dist", ".venv", "node_modules"}

#: ``random`` module functions that mutate/consume the hidden global state.
_RANDOM_STATE_FUNCS = frozenset({
    "random", "seed", "randint", "randrange", "uniform", "gauss",
    "normalvariate", "expovariate", "shuffle", "choice", "choices",
    "sample", "betavariate", "triangular", "paretovariate", "getrandbits",
})

#: ``np.random`` attributes that are fine to call (seedable constructors).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "Philox",
})


def _is_test_path(path: Path) -> bool:
    parts = set(path.parts)
    return (
        "tests" in parts
        or "benchmarks" in parts
        or path.stem.startswith("test_")
        or path.stem == "conftest"
    )


class _LintVisitor(ast.NodeVisitor):
    """Single-pass visitor collecting REPRO501-503 findings."""

    def __init__(self, forbid_print: bool = False,
                 flag_scalar_loops: bool = False,
                 flag_dense_allocs: bool = False) -> None:
        self.findings: List[Dict[str, object]] = []
        self._assert_depth = 0
        self._loop_depth = 0
        self.forbid_print = forbid_print
        self.flag_scalar_loops = flag_scalar_loops
        self.flag_dense_allocs = flag_dense_allocs

    def _report(self, code: str, node: ast.AST, message: str,
                fix_hint: str) -> None:
        self.findings.append({
            "code": code,
            "lineno": getattr(node, "lineno", 1),
            "message": message,
            "fix_hint": fix_hint,
        })

    # ----------------------------------------------------------- REPRO501

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.forbid_print
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._report(
                "REPRO505", node,
                "print() in library code",
                "log via repro.obs.log.get_logger(__name__) instead",
            )
        if (
            self.flag_dense_allocs
            and self._loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr in _DENSE_ALLOC_FUNCS
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
            and node.args
            and isinstance(node.args[0], ast.Tuple)
            and len(node.args[0].elts) >= 2
        ):
            self._report(
                "REPRO508", node,
                f"dense np.{func.attr}(...) allocation inside a placement "
                "loop",
                "hoist the buffer out of the loop or patch per-candidate "
                "deltas (see the incremental annealing/optimal kernels)",
            )
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "random":
                if func.attr == "Random" and not node.args and not node.keywords:
                    self._report(
                        "REPRO501", node,
                        "random.Random() constructed without a seed",
                        "pass an explicit seed: random.Random(seed)",
                    )
                elif func.attr in _RANDOM_STATE_FUNCS:
                    self._report(
                        "REPRO501", node,
                        f"random.{func.attr}() uses the global RNG state",
                        "use a seeded random.Random(seed) instance",
                    )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and func.attr not in _NP_RANDOM_ALLOWED
            ):
                self._report(
                    "REPRO501", node,
                    f"np.random.{func.attr}() uses numpy's global RNG state",
                    "use np.random.default_rng(seed)",
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- REPRO502

    def visit_Assert(self, node: ast.Assert) -> None:
        self._assert_depth += 1
        self.generic_visit(node)
        self._assert_depth -= 1

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._assert_depth == 0:
            operands = [node.left] + list(node.comparators)
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            has_float = any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            )
            if has_eq and has_float:
                self._report(
                    "REPRO502", node,
                    "float literal compared with ==/!=",
                    "use math.isclose(...) or compare against a tolerance",
                )
        self.generic_visit(node)

    # ----------------------------------------------------------- REPRO503

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                self._report(
                    "REPRO503", default,
                    "mutable default argument is shared across calls",
                    "default to None and create the value inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    # ----------------------------------------------------------- REPRO506

    @staticmethod
    def _body_subscripts_with(body: Sequence[ast.stmt], name: str) -> bool:
        """Whether any statement indexes something with the given name."""
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Subscript) and any(
                    isinstance(ref, ast.Name) and ref.id == name
                    for ref in ast.walk(node.slice)
                ):
                    return True
        return False

    def visit_For(self, node: ast.For) -> None:
        if (
            self.flag_scalar_loops
            and isinstance(node.target, ast.Name)
            and isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
            and self._body_subscripts_with(node.body, node.target.id)
        ):
            self._report(
                "REPRO506", node,
                "per-element Python loop over array data in the volume "
                "kernel",
                "vectorize with whole-array numpy operations, or add a "
                "justified noqa if the loop is not per-point",
            )
        self.visit(node.target)
        self.visit(node.iter)
        self._visit_loop_body(node)

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._visit_loop_body(node)

    def _visit_loop_body(self, node: ast.stmt) -> None:
        """Visit a loop's body/orelse with the loop depth raised — the
        iterable/test runs once, only the body repeats."""
        self._loop_depth += 1
        for statement in getattr(node, "body", []):
            self.visit(statement)
        self._loop_depth -= 1
        for statement in getattr(node, "orelse", []):
            self.visit(statement)


def _module_defines_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                return True
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == "__all__":
                return True
    return False


def _raw_findings(
    tree: ast.Module, path: Path, flow: bool
) -> Tuple[List[Dict[str, object]], Set[str]]:
    """Unsuppressed findings plus the codes that actually ran."""
    forbid_print = (
        "repro" in path.parts
        and path.stem not in _PRINT_EXEMPT_STEMS
        and not _is_test_path(path)
    )
    parent_parts = path.parts[:-1]
    flag_scalar_loops = (
        parent_parts[-len(_SCALAR_LOOP_SCOPE):] == _SCALAR_LOOP_SCOPE
        and not _is_test_path(path)
    )
    flag_dense_allocs = (
        parent_parts[-len(_DENSE_ALLOC_SCOPE):] == _DENSE_ALLOC_SCOPE
        and not _is_test_path(path)
    )
    visitor = _LintVisitor(
        forbid_print=forbid_print,
        flag_scalar_loops=flag_scalar_loops,
        flag_dense_allocs=flag_dense_allocs,
    )
    visitor.visit(tree)
    findings = visitor.findings

    check_all = (
        "src" in path.parts
        and not path.stem.startswith("_")
        and not _is_test_path(path)
    )
    if check_all and not _module_defines_all(tree):
        findings.append({
            "code": "REPRO504",
            "lineno": 1,
            "message": "public module does not define __all__",
            "fix_hint": "declare __all__ with the module's public names",
        })

    active = {"REPRO501", "REPRO502", "REPRO503"}
    if check_all:
        active.add("REPRO504")
    if forbid_print:
        active.add("REPRO505")
    if flag_scalar_loops:
        active.add("REPRO506")
    if flag_dense_allocs:
        active.add("REPRO508")

    # Flow rules run over library code only: test modules iterate sets
    # in assertions and build throwaway fixtures all the time, and the
    # determinism contract they would enforce belongs to src/.
    run_flow = flow and not _is_test_path(path)
    if run_flow:
        findings.extend(analyze_module(tree, path))
        active |= active_flow_codes(path)
    return findings, active


def lint_source(
    source: str, path: Path, flow: bool = False
) -> List[Diagnostic]:
    """Lint one module's source text; returns its diagnostics.

    With ``flow=True`` the REPRO6xx dataflow pack runs too (on
    non-test files).  Suppressions (``# noqa``) are shared between both
    packs, and markers that suppressed nothing surface as ``REPRO507``.
    """
    location = str(path)
    try:
        tree = ast.parse(source, filename=location)
    except SyntaxError as exc:
        return [Diagnostic(
            code="REPRO500",
            severity=Severity.ERROR,
            message=f"cannot parse module: {exc.msg}",
            location=f"{location}:{exc.lineno or 1}",
        )]

    findings, active = _raw_findings(tree, path, flow)
    findings.sort(key=lambda f: (f["lineno"], f["code"]))
    markers = find_markers(source)
    keep = apply_suppressions(
        [(str(f["code"]), int(f["lineno"])) for f in findings],  # type: ignore[arg-type]
        markers,
    )

    entries: List[Tuple[int, str, Diagnostic]] = []
    for finding, kept in zip(findings, keep):
        if not kept:
            continue
        code = str(finding["code"])
        lineno = int(finding["lineno"])  # type: ignore[arg-type]
        severity, _ = _ALL_CODES.get(code, (Severity.ERROR, ""))
        entries.append((lineno, code, Diagnostic(
            code=code,
            severity=severity,
            message=str(finding["message"]),
            location=f"{location}:{lineno}",
            fix_hint=str(finding["fix_hint"]) if finding.get("fix_hint") else None,
        )))
    for lineno in sorted(markers):
        stale = stale_codes(markers[lineno], active)
        if not stale:
            continue
        label = ", ".join(stale)
        entries.append((lineno, "REPRO507", Diagnostic(
            code="REPRO507",
            severity=Severity.WARNING,
            message=f"suppression '{label}' no longer matches any finding",
            location=f"{location}:{lineno}",
            fix_hint="remove the stale entry, or run "
                     "repro-lint --prune-baseline",
        )))
    entries.sort(key=lambda e: (e[0], e[1]))
    return [diagnostic for _, _, diagnostic in entries]


def lint_file(path: Path, flow: bool = False) -> List[Diagnostic]:
    """Lint one ``.py`` file from disk."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Diagnostic(
            code="REPRO500",
            severity=Severity.ERROR,
            message=f"cannot read file: {exc}",
            location=str(path),
        )]
    return lint_source(source, path, flow=flow)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    result = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    result.append(candidate)
        elif path.suffix == ".py":
            result.append(path)
    return result


def _lint_task(task: Tuple[str, bool]) -> List[Diagnostic]:
    """Picklable per-file unit for ``--jobs`` fan-out."""
    path_str, flow = task
    return lint_file(Path(path_str), flow=flow)


def lint_paths(
    paths: Sequence[object], flow: bool = False, jobs: int = 1
) -> CheckReport:
    """Lint every ``.py`` file under the given files/directories."""
    files = iter_python_files(Path(str(p)) for p in paths)
    report = CheckReport()
    if jobs > 1 and len(files) > 1:
        from ..parallel import parallel_map

        tasks = [(str(path), flow) for path in files]
        for diagnostics in parallel_map(_lint_task, tasks, jobs=jobs):
            report.extend(diagnostics)
    else:
        for path in files:
            report.extend(lint_file(path, flow=flow))
    return report


def prune_baseline_paths(
    paths: Sequence[object], flow: bool = False
) -> List[Tuple[Path, int]]:
    """Remove stale ``noqa`` entries in place; ``(path, pruned)`` list.

    Re-runs the same analysis as :func:`lint_paths` to learn which
    markers still suppress something, then rewrites each file whose
    baseline has dead entries.  Unparseable files are left alone.
    """
    changed: List[Tuple[Path, int]] = []
    for path in iter_python_files(Path(str(p)) for p in paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            continue
        findings, active = _raw_findings(tree, path, flow)
        markers = find_markers(source)
        apply_suppressions(
            [(str(f["code"]), int(f["lineno"])) for f in findings],  # type: ignore[arg-type]
            markers,
        )
        new_source, pruned = prune_markers(source, markers, active)
        if pruned:
            path.write_text(new_source, encoding="utf-8")
            changed.append((path, pruned))
    return changed


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro-lint [paths...] [--fail-on SEVERITY]`` console entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint for repo-specific invariants "
                    "(REPRO5xx + REPRO6xx dataflow rules)",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint")
    parser.add_argument("--fail-on", default="warning",
                        choices=("info", "warning", "error"),
                        help="lowest severity that fails the run")
    parser.add_argument("--flow", dest="flow", action="store_true",
                        default=True,
                        help="run the REPRO6xx dataflow rules (default)")
    parser.add_argument("--no-flow", dest="flow", action="store_false",
                        help="skip the dataflow rules")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for per-file analysis")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite files to drop stale noqa entries, "
                             "then lint what remains")
    args = parser.parse_args(argv)

    # This *is* the console entry point; stdout is its interface.
    try:
        if args.prune_baseline:
            for path, pruned in prune_baseline_paths(
                args.paths, flow=args.flow
            ):
                print(f"pruned {pruned} stale suppression(s) in {path}")  # noqa: REPRO505
        report = lint_paths(args.paths, flow=args.flow, jobs=args.jobs)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"repro-lint: internal error: {exc}", file=sys.stderr)  # noqa: REPRO505
        return 2
    threshold = Severity.parse(args.fail_on)
    failing = report.at_least(threshold)
    for diagnostic in report:
        print(diagnostic.format())  # noqa: REPRO505
    errors, warnings, infos = report.counts()
    print(f"repro-lint: {errors} error(s), {warnings} warning(s), "  # noqa: REPRO505
          f"{infos} info(s)")
    parse_failures = [d for d in report if d.code == "REPRO500"]
    if parse_failures:
        for diagnostic in parse_failures:
            print(f"repro-lint: cannot analyze {diagnostic.location}",  # noqa: REPRO505
                  file=sys.stderr)
        return 2
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
