"""Placement-plan verifier pass (``REPRO3xx``).

Two entry points:

* :func:`check_plan_document` validates a *plan document* (the JSON
  dict ``repro-rod place -o`` writes) before any :class:`Placement` is
  constructed — mapping totality, node-index bounds, capacity
  positivity, and consistency of a stored ``L^n`` with the recomputed
  ``A L^o`` when the load model is available.
* :func:`check_placement` validates an already-constructed
  :class:`~repro.core.plans.Placement` (model sanity plus plan-level
  consistency between the placement and its derived feasible set).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional

import numpy as np

from ..core.load_model import LoadModel
from ..core.plans import Placement
from .diagnostics import CheckReport, Diagnostic, Severity
from .verify_model import check_model

__all__ = ["check_placement", "check_plan_document"]

#: Relative tolerance for comparing a stored ``L^n`` against ``A L^o``.
LN_CONSISTENCY_RTOL = 1e-9


def _iter_document_diagnostics(
    doc: Mapping[str, Any],
    model: Optional[LoadModel],
    location: str,
) -> Iterator[Diagnostic]:
    assignment = doc.get("assignment")
    if not isinstance(assignment, Mapping):
        yield Diagnostic(
            code="REPRO301",
            severity=Severity.ERROR,
            message="plan document has no 'assignment' mapping",
            location=location,
            fix_hint="expected {'assignment': {operator: node index}}",
        )
        return

    capacities = doc.get("capacities")
    num_nodes: Optional[int] = None
    if capacities is not None:
        c = np.asarray(capacities, dtype=float)
        if c.ndim != 1 or c.size == 0:
            yield Diagnostic(
                code="REPRO304",
                severity=Severity.ERROR,
                message=f"capacities must be a non-empty list, got {capacities!r}",
                location=location,
                fix_hint="one positive CPU capacity per node",
            )
        else:
            num_nodes = int(c.size)
            if not np.all(np.isfinite(c)) or np.any(c <= 0):
                yield Diagnostic(
                    code="REPRO304",
                    severity=Severity.ERROR,
                    message=(
                        f"capacities must be finite and > 0, got {c.tolist()}"
                    ),
                    location=location,
                    fix_hint="a node with zero capacity can host nothing; "
                    "remove it or give it positive capacity",
                )

    for op_name, node in assignment.items():
        if not isinstance(node, int) or isinstance(node, bool) or node < 0:
            yield Diagnostic(
                code="REPRO303",
                severity=Severity.ERROR,
                message=(
                    f"operator {op_name!r} is assigned to {node!r}; node "
                    "indexes must be non-negative integers"
                ),
                location=f"{location}/operator {op_name!r}",
            )
        elif num_nodes is not None and node >= num_nodes:
            yield Diagnostic(
                code="REPRO303",
                severity=Severity.ERROR,
                message=(
                    f"operator {op_name!r} is assigned to node {node}, but "
                    f"the plan declares only {num_nodes} node(s)"
                ),
                location=f"{location}/operator {op_name!r}",
                fix_hint="node indexes are 0-based and must be < len(capacities)",
            )

    if num_nodes is not None:
        used = {
            n for n in assignment.values()
            if isinstance(n, int) and 0 <= n < num_nodes
        }
        for node in range(num_nodes):
            if node not in used:
                yield Diagnostic(
                    code="REPRO306",
                    severity=Severity.INFO,
                    message=f"node {node} hosts no operators",
                    location=location,
                )

    stored_ln = doc.get("node_coefficients")
    if stored_ln is not None:
        ln = np.asarray(stored_ln, dtype=float)
        if ln.ndim != 2:
            yield Diagnostic(
                code="REPRO305",
                severity=Severity.ERROR,
                message=f"stored node_coefficients must be 2-D, got shape {ln.shape}",
                location=location,
                fix_hint="regenerate the plan with Placement.to_json()",
            )
            stored_ln = None
        elif num_nodes is not None and ln.shape[0] != num_nodes:
            yield Diagnostic(
                code="REPRO305",
                severity=Severity.ERROR,
                message=(
                    f"stored node_coefficients has {ln.shape[0]} row(s) but "
                    f"the plan declares {num_nodes} node(s)"
                ),
                location=location,
                fix_hint="regenerate the plan with Placement.to_json()",
            )
            stored_ln = None

    if model is None:
        return

    graph_name = doc.get("graph")
    if graph_name is not None and graph_name != model.graph.name:
        yield Diagnostic(
            code="REPRO308",
            severity=Severity.WARNING,
            message=(
                f"plan was written for graph {graph_name!r} but is being "
                f"checked against {model.graph.name!r}"
            ),
            location=location,
        )

    missing = [n for n in model.operator_names if n not in assignment]
    if missing:
        yield Diagnostic(
            code="REPRO301",
            severity=Severity.ERROR,
            message=(
                f"assignment is missing {len(missing)} operator(s): "
                f"{missing[:5]}"
            ),
            location=location,
            fix_hint="a plan must map every operator of the model to a node",
        )
    extra = [n for n in assignment if n not in model.operator_names]
    if extra:
        yield Diagnostic(
            code="REPRO302",
            severity=Severity.ERROR,
            message=(
                f"assignment names {len(extra)} unknown operator(s): "
                f"{extra[:5]}"
            ),
            location=location,
            fix_hint="remove stale operators or regenerate the plan",
        )

    if stored_ln is not None and not missing and not extra:
        ln = np.asarray(stored_ln, dtype=float)
        if ln.shape[1] != model.num_variables:
            yield Diagnostic(
                code="REPRO305",
                severity=Severity.ERROR,
                message=(
                    f"stored node_coefficients has {ln.shape[1]} column(s) "
                    f"but the model has d={model.num_variables} variable(s)"
                ),
                location=location,
                fix_hint=(
                    "the plan was computed against a different load model; "
                    "regenerate it with Placement.to_json()"
                ),
            )
        else:
            n = ln.shape[0]
            recomputed = np.zeros_like(ln)
            in_bounds = True
            for j, op_name in enumerate(model.operator_names):
                node = assignment[op_name]
                if not isinstance(node, int) or not 0 <= node < n:
                    in_bounds = False
                    break
                recomputed[node] += model.coefficients[j]
            if in_bounds and not np.allclose(
                recomputed, ln, rtol=LN_CONSISTENCY_RTOL, atol=1e-12
            ):
                worst = np.unravel_index(
                    np.argmax(np.abs(recomputed - ln)), ln.shape
                )
                yield Diagnostic(
                    code="REPRO305",
                    severity=Severity.ERROR,
                    message=(
                        "stored L^n disagrees with recomputed A.L^o "
                        f"(largest gap at node {worst[0]}, variable "
                        f"{model.variables[worst[1]]!r}: stored "
                        f"{ln[worst]:g}, recomputed {recomputed[worst]:g})"
                    ),
                    location=location,
                    fix_hint=(
                        "the plan is stale relative to the graph/model; "
                        "re-run placement or regenerate the plan file"
                    ),
                )


def check_plan_document(
    doc: Mapping[str, Any],
    model: Optional[LoadModel] = None,
    location: str = "plan",
) -> CheckReport:
    """Verify a plan document, optionally against its load model."""
    report = CheckReport()
    report.extend(_iter_document_diagnostics(doc, model, location))
    return report


def check_placement(placement: Placement) -> CheckReport:
    """Verify a constructed placement and the model beneath it."""
    report = check_model(placement.model)
    location = f"plan {placement.model.graph.name!r}"
    counts = placement.operator_counts()
    for node, count in enumerate(counts):
        if count == 0:
            report.add(Diagnostic(
                code="REPRO306",
                severity=Severity.INFO,
                message=f"node {node} hosts no operators",
                location=location,
            ))
    fs = placement.feasible_set()
    if not np.allclose(
        fs.column_totals,
        placement.model.column_totals(),
        rtol=LN_CONSISTENCY_RTOL,
        atol=1e-12,
    ):
        report.add(Diagnostic(
            code="REPRO305",
            severity=Severity.ERROR,
            message=(
                "feasible-set column totals disagree with the model's "
                "(plan and model are out of sync)"
            ),
            location=location,
            fix_hint="rebuild the placement from the current model",
        ))
    return report
