"""Shared ``noqa`` suppression handling for all source checkers.

``repro-lint`` (REPRO5xx) and the dataflow pass (REPRO6xx/61x) suppress
findings the same way: a ``# noqa`` or ``# noqa: REPRO601`` marker on
the offending line, ideally followed by a justification comment.  This
module is the one implementation of parsing those markers, applying
them to raw findings, and — the part a flat per-pass implementation
cannot do — detecting markers that no longer suppress anything so the
baseline can be pruned (``repro-lint --prune-baseline``) and CI can
fail on stale suppressions (``REPRO507``).

A marker only counts as *stale* with respect to the rule codes that
actually ran: a ``# noqa: REPRO601`` is not stale just because the flow
pass was skipped, and codes belonging to other tools (``B018``,
``E501``, ...) are never repro-lint's business.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "NoqaMarker",
    "find_markers",
    "noqa_codes",
    "apply_suppressions",
    "stale_codes",
    "prune_markers",
]

#: Matches a noqa marker and its optional code list: bare, one code
#: ("noqa: REPRO501"), or several ("noqa: REPRO501, B018").
_MARKER_RE = re.compile(
    r"#\s*noqa(?P<codes>:[^#]*)?(?![\w-])", re.IGNORECASE
)

_REPRO_CODE_RE = re.compile(r"^REPRO\d{3}$")


@dataclass
class NoqaMarker:
    """One ``# noqa`` marker found on a source line.

    ``codes`` is empty for a bare ``# noqa`` (suppresses everything).
    ``used`` collects the REPRO codes the marker actually suppressed
    when findings were applied against it.
    """

    lineno: int
    start: int            # character offset of the marker in its line
    end: int              # offset one past the marker's code list
    codes: List[str]      # empty == bare noqa
    used: Set[str]

    @property
    def bare(self) -> bool:
        return not self.codes

    def suppresses(self, code: str) -> bool:
        return self.bare or code in self.codes

    def repro_codes(self) -> List[str]:
        return [c for c in self.codes if _REPRO_CODE_RE.match(c)]


def _marker_from_match(
    lineno: int, offset: int, match: "re.Match[str]"
) -> NoqaMarker:
    raw = match.group("codes")
    codes: List[str] = []
    if raw:
        codes = [
            c.strip().upper()
            for c in raw.lstrip(":").split(",")
            if c.strip()
        ]
    return NoqaMarker(
        lineno=lineno,
        start=offset + match.start(),
        end=offset + match.end(),
        codes=codes,
        used=set(),
    )


def find_markers(source: str) -> Dict[int, NoqaMarker]:
    """lineno -> marker for every ``# noqa`` comment in the source.

    Tokenizes so that ``noqa`` text inside string literals (lint-rule
    test fixtures are full of it) is not mistaken for a marker; falls
    back to a plain line scan when the source does not tokenize.
    """
    markers: Dict[int, NoqaMarker] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = None
    if tokens is not None:
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _MARKER_RE.search(token.string)
            if match is None:
                continue
            lineno, column = token.start
            markers[lineno] = _marker_from_match(lineno, column, match)
        return markers
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _MARKER_RE.search(line)
        if match is not None:
            markers[lineno] = _marker_from_match(lineno, 0, match)
    return markers


def noqa_codes(line: str) -> Optional[List[str]]:
    """Codes suppressed on this line; ``[]`` means "all" (bare noqa).

    ``None`` when the line carries no marker.  Kept for callers that
    only need the one-line query; richer flows use :func:`find_markers`.
    """
    markers = find_markers(line)
    if not markers:
        return None
    return markers[1].codes


def apply_suppressions(
    findings: Sequence[Tuple[str, int]],
    markers: Dict[int, NoqaMarker],
) -> List[bool]:
    """Decide, per ``(code, lineno)`` finding, whether it survives.

    Returns a parallel list of booleans (``True`` = keep).  Markers that
    suppress a finding record the code in their ``used`` set, which is
    what stale-marker detection inspects afterwards.
    """
    keep: List[bool] = []
    for code, lineno in findings:
        marker = markers.get(lineno)
        if marker is not None and marker.suppresses(code):
            marker.used.add(code)
            keep.append(False)
        else:
            keep.append(True)
    return keep


def stale_codes(
    marker: NoqaMarker, active_codes: Set[str]
) -> List[str]:
    """The marker's REPRO codes that suppressed nothing.

    Only codes in ``active_codes`` — the rules that actually ran over
    the file — can be judged stale.  For a bare marker the answer is
    ``["noqa"]`` when it suppressed nothing at all (bare markers are
    repo policy-violating anyway; prefer coded ones).
    """
    if marker.bare:
        return [] if marker.used else ["noqa"]
    return [
        code
        for code in marker.repro_codes()
        if code in active_codes and code not in marker.used
    ]


def prune_markers(
    source: str,
    markers: Dict[int, NoqaMarker],
    active_codes: Set[str],
) -> Tuple[str, int]:
    """Rewrite the source with stale suppression entries removed.

    * A marker whose REPRO codes are all stale (or a bare marker that
      suppressed nothing) is stripped to the end of the line — the
      trailing justification comment exists only to justify it.
    * A partially stale code list is rewritten keeping the codes that
      still suppress something plus any non-REPRO codes (other tools'
      suppressions are not ours to touch).

    Returns ``(new_source, pruned_marker_count)``.
    """
    lines = source.splitlines(keepends=True)
    pruned = 0
    for lineno, marker in markers.items():
        stale = stale_codes(marker, active_codes)
        if not stale:
            continue
        index = lineno - 1
        line = lines[index]
        newline = line[len(line.rstrip("\r\n")):]
        body = line.rstrip("\r\n")
        keep_codes = [
            c for c in marker.codes
            if not (_REPRO_CODE_RE.match(c) and c in stale)
        ]
        if marker.bare or not keep_codes:
            body = body[:marker.start].rstrip()
        else:
            head = body[:marker.start]
            tail = body[marker.end:]
            body = f"{head}# noqa: {', '.join(keep_codes)}{tail}"
        lines[index] = body + newline
        pruned += 1
    return "".join(lines), pruned
