"""Structured diagnostics for the static-analysis subsystem.

Every verifier pass and lint rule reports :class:`Diagnostic` records —
never raw exceptions — so problems in a query graph, load model,
placement plan or source file surface *before* they become deep NumPy
shape errors or silently-wrong volumes.  A :class:`CheckReport`
aggregates diagnostics across passes and decides exit codes.

Diagnostic codes are stable identifiers (documented in
``docs/static_analysis.md``):

* ``REPRO1xx`` — query-graph invariants
* ``REPRO2xx`` — load-model invariants (``L^o`` shape, sign, finiteness)
* ``REPRO3xx`` — placement-plan invariants (totality, bounds,
  ``L^n = A L^o`` consistency)
* ``REPRO4xx`` — experiment-config invariants (dimensions, seeds)
* ``REPRO5xx`` — source lint rules (``repro-lint``)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "CheckReport", "CheckError"]


class Severity(enum.IntEnum):
    """Severity ladder; comparisons follow the integer ordering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        """Parse a case-insensitive severity name (CLI ``--fail-on``)."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; "
                f"expected one of {[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a verifier pass or lint rule.

    Attributes
    ----------
    code:
        Stable identifier (``REPRO305``); groups findings of one rule.
    severity:
        :class:`Severity` — ``ERROR`` findings fail plan construction
        and (by default) the ``repro-rod check`` exit code.
    message:
        Human-readable statement of the violated invariant.
    location:
        Where the problem is — ``"file.py:12"`` for lint findings,
        ``"plan 'q'/operator 'f'"`` style paths for semantic ones.
    fix_hint:
        Optional actionable suggestion shown after the message.
    """

    code: str
    severity: Severity
    message: str
    location: str = ""
    fix_hint: Optional[str] = None

    def format(self) -> str:
        """Render as a single ``location: CODE severity: message`` line."""
        prefix = f"{self.location}: " if self.location else ""
        line = f"{prefix}{self.code} {self.severity}: {self.message}"
        if self.fix_hint:
            line += f" (hint: {self.fix_hint})"
        return line

    def __str__(self) -> str:
        return self.format()


class CheckError(Exception):
    """Raised when a check gate finds error-severity diagnostics.

    Carries the full :class:`CheckReport` so callers (and tracebacks)
    see every structured finding, not just the first.
    """

    def __init__(self, report: "CheckReport") -> None:
        self.report = report
        errors = report.errors
        summary = "; ".join(d.format() for d in errors[:3])
        if len(errors) > 3:
            summary += f"; and {len(errors) - 3} more"
        super().__init__(
            f"{len(errors)} error-severity diagnostic(s): {summary}"
        )


@dataclass
class CheckReport:
    """An ordered collection of diagnostics with aggregate queries."""

    diagnostics: List[Diagnostic] = field(default_factory=lambda: [])

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Append another report's diagnostics in place; returns self."""
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------ aggregate

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity == Severity.WARNING
        ]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were reported."""
        return not self.errors

    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_least(self, threshold: Severity) -> List[Diagnostic]:
        """Diagnostics at or above ``threshold``."""
        return [d for d in self.diagnostics if d.severity >= threshold]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def counts(self) -> Tuple[int, int, int]:
        """``(errors, warnings, infos)`` counts."""
        infos = sum(
            1 for d in self.diagnostics if d.severity == Severity.INFO
        )
        return (len(self.errors), len(self.warnings), infos)

    # --------------------------------------------------------------- output

    def format(self) -> str:
        """Multi-line rendering: one line per diagnostic plus a summary."""
        lines = [d.format() for d in self.diagnostics]
        errors, warnings, infos = self.counts()
        lines.append(
            f"{errors} error(s), {warnings} warning(s), {infos} info(s)"
        )
        return "\n".join(lines)

    def raise_if_errors(self) -> "CheckReport":
        """Raise :class:`CheckError` if any error-severity finding exists.

        Returns self otherwise, so gates can be chained fluently.
        """
        if not self.ok:
            raise CheckError(self)
        return self

    # --------------------------------------------------------------- dunder

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __str__(self) -> str:
        return self.format()
