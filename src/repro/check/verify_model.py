"""Load-model verifier pass (``REPRO2xx``).

Validates the shape and numeric sanity of ``L^o`` against the model's
declared variables and operators — the invariants that, when violated,
otherwise surface as deep NumPy broadcasting errors or silently-wrong
feasible-set volumes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.load_model import LoadModel
from .diagnostics import CheckReport, Diagnostic, Severity

__all__ = ["check_model"]


def _loc(model: LoadModel, *parts: str) -> str:
    return "/".join((f"model {model.graph.name!r}",) + parts)


def _iter_model_diagnostics(model: LoadModel) -> Iterator[Diagnostic]:
    m = len(model.operator_names)
    d = len(model.variables)
    coeffs = np.asarray(model.coefficients)

    if coeffs.shape != (m, d):
        yield Diagnostic(
            code="REPRO201",
            severity=Severity.ERROR,
            message=(
                f"L^o has shape {coeffs.shape} but the model declares "
                f"{m} operator(s) x {d} variable(s)"
            ),
            location=_loc(model),
            fix_hint="rebuild the model with build_load_model(graph)",
        )
        return  # every later check indexes by the declared shape

    if len(set(model.variables)) != d:
        dupes = sorted(
            {v for v in model.variables if model.variables.count(v) > 1}
        )
        yield Diagnostic(
            code="REPRO206",
            severity=Severity.ERROR,
            message=f"duplicate variable name(s): {dupes}",
            location=_loc(model),
            fix_hint="stream names must be unique within a graph",
        )
    if len(set(model.operator_names)) != m:
        yield Diagnostic(
            code="REPRO207",
            severity=Severity.ERROR,
            message="duplicate operator names in the model",
            location=_loc(model),
        )

    bad = ~np.isfinite(coeffs)
    if np.any(bad):
        rows = sorted({int(j) for j in np.nonzero(bad)[0]})
        names = [model.operator_names[j] for j in rows[:5]]
        yield Diagnostic(
            code="REPRO203",
            severity=Severity.ERROR,
            message=f"L^o contains NaN/inf entries in row(s) for {names}",
            location=_loc(model),
            fix_hint="operator costs and selectivities must be finite",
        )
    negative = np.isfinite(coeffs) & (coeffs < 0)
    if np.any(negative):
        rows = sorted({int(j) for j in np.nonzero(negative)[0]})
        names = [model.operator_names[j] for j in rows[:5]]
        yield Diagnostic(
            code="REPRO202",
            severity=Severity.ERROR,
            message=f"negative load coefficient(s) in row(s) for {names}",
            location=_loc(model),
            fix_hint="CPU cost per tuple cannot be negative",
        )

    if m > 0 and np.all(np.isfinite(coeffs)):
        totals = coeffs.sum(axis=0)
        for k, total in enumerate(totals):
            if total <= 0.0:
                yield Diagnostic(
                    code="REPRO204",
                    severity=Severity.WARNING,
                    message=(
                        f"variable {model.variables[k]!r} carries no load "
                        "(zero column in L^o); the ideal feasible set is "
                        "unbounded along it"
                    ),
                    location=_loc(model, f"variable {model.variables[k]!r}"),
                    fix_hint=(
                        "only volume *ratios* are meaningful for this model"
                    ),
                )

    for name, vector in model.stream_coefficients.items():
        v = np.asarray(vector, dtype=float)
        if v.shape != (d,):
            yield Diagnostic(
                code="REPRO205",
                severity=Severity.ERROR,
                message=(
                    f"stream {name!r} rate vector has shape {v.shape}, "
                    f"expected ({d},)"
                ),
                location=_loc(model, f"stream {name!r}"),
                fix_hint="rebuild the model with build_load_model(graph)",
            )


def check_model(model: LoadModel) -> CheckReport:
    """Verify shape/sign/finiteness invariants of a load model."""
    report = CheckReport()
    report.extend(_iter_model_diagnostics(model))
    return report
