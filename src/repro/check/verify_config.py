"""Experiment-config verifier pass (``REPRO4xx``).

An *experiment config* is the declarative JSON/dict form of one
experiment run: which graph, which cluster, which placement strategy,
what rate region or rate point to explore, and the seed that makes the
run reproducible.  The pass checks dimensional consistency against the
load model (when available) and flags configs that cannot reproduce.

Recognized keys::

    {
      "kind": "experiment",
      "graph": "<graph name or relative path to a graph document>",
      "capacities": [1.0, 1.0],
      "strategy": "rod",
      "seed": 3,
      "rate_region": [[0, 100], [0, 80]],
      "rates": [50.0, 40.0],
      "utilization": 0.8,
      "duration": 20.0
    }
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Optional, Sequence

import numpy as np

from ..core.load_model import LoadModel
from .diagnostics import CheckReport, Diagnostic, Severity

__all__ = ["check_experiment_config", "KNOWN_STRATEGIES"]

#: Placement strategies the deployment facade accepts.
KNOWN_STRATEGIES = (
    "rod", "llf", "connected", "correlation", "random", "optimal", "milp",
)


def _check_rate_vector(
    values: Sequence[Any],
    key: str,
    expected_dim: Optional[int],
    location: str,
) -> Iterator[Diagnostic]:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        yield Diagnostic(
            code="REPRO402",
            severity=Severity.ERROR,
            message=f"{key!r} must be a flat list of rates, got shape {arr.shape}",
            location=location,
        )
        return
    if expected_dim is not None and arr.shape[0] != expected_dim:
        yield Diagnostic(
            code="REPRO402",
            severity=Severity.ERROR,
            message=(
                f"{key!r} has {arr.shape[0]} entry(ies) but the graph "
                f"declares {expected_dim} input stream(s)"
            ),
            location=location,
            fix_hint="one rate per system input stream, in input order",
        )
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0)):
        yield Diagnostic(
            code="REPRO403",
            severity=Severity.ERROR,
            message=f"{key!r} entries must be finite and >= 0, got {arr.tolist()}",
            location=location,
        )


def _iter_config_diagnostics(
    config: Mapping[str, Any],
    model: Optional[LoadModel],
    location: str,
) -> Iterator[Diagnostic]:
    expected_dim = model.num_inputs if model is not None else None

    if config.get("seed") is None:
        yield Diagnostic(
            code="REPRO401",
            severity=Severity.WARNING,
            message="config declares no 'seed'; the run is not reproducible",
            location=location,
            fix_hint="add an integer 'seed' so reruns regenerate the artifact",
        )

    strategy = config.get("strategy")
    if strategy is not None and strategy not in KNOWN_STRATEGIES:
        yield Diagnostic(
            code="REPRO404",
            severity=Severity.ERROR,
            message=(
                f"unknown placement strategy {strategy!r}; expected one of "
                f"{list(KNOWN_STRATEGIES)}"
            ),
            location=location,
        )

    region = config.get("rate_region")
    if region is not None:
        arr = np.asarray(region, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            yield Diagnostic(
                code="REPRO402",
                severity=Severity.ERROR,
                message=(
                    "'rate_region' must be a list of [low, high] pairs, "
                    f"got shape {arr.shape}"
                ),
                location=location,
                fix_hint="one [low, high] interval per system input stream",
            )
        else:
            if expected_dim is not None and arr.shape[0] != expected_dim:
                yield Diagnostic(
                    code="REPRO402",
                    severity=Severity.ERROR,
                    message=(
                        f"'rate_region' has {arr.shape[0]} interval(s) but "
                        f"the graph declares {expected_dim} input stream(s)"
                    ),
                    location=location,
                    fix_hint="one [low, high] interval per input stream",
                )
            if not np.all(np.isfinite(arr)) or np.any(arr < 0):
                yield Diagnostic(
                    code="REPRO403",
                    severity=Severity.ERROR,
                    message="'rate_region' bounds must be finite and >= 0",
                    location=location,
                )
            elif np.any(arr[:, 0] > arr[:, 1]):
                yield Diagnostic(
                    code="REPRO403",
                    severity=Severity.ERROR,
                    message="'rate_region' has an interval with low > high",
                    location=location,
                )

    rates = config.get("rates")
    if rates is not None:
        yield from _check_rate_vector(rates, "rates", expected_dim, location)

    capacities = config.get("capacities")
    if capacities is not None:
        c = np.asarray(capacities, dtype=float)
        if (
            c.ndim != 1 or c.size == 0
            or not np.all(np.isfinite(c)) or np.any(c <= 0)
        ):
            yield Diagnostic(
                code="REPRO304",
                severity=Severity.ERROR,
                message=(
                    "'capacities' must be a non-empty list of finite "
                    f"positive numbers, got {capacities!r}"
                ),
                location=location,
            )

    utilization = config.get("utilization")
    if utilization is not None:
        u = float(utilization)
        if not 0.0 < u <= 1.0:
            yield Diagnostic(
                code="REPRO405",
                severity=Severity.WARNING,
                message=(
                    f"'utilization' is {u:g}; targets outside (0, 1] start "
                    "the experiment overloaded"
                ),
                location=location,
            )

    duration = config.get("duration")
    if duration is not None and float(duration) <= 0:
        yield Diagnostic(
            code="REPRO406",
            severity=Severity.ERROR,
            message=f"'duration' must be > 0, got {duration!r}",
            location=location,
        )


def check_experiment_config(
    config: Mapping[str, Any],
    model: Optional[LoadModel] = None,
    location: str = "experiment config",
) -> CheckReport:
    """Verify an experiment config, optionally against its load model."""
    report = CheckReport()
    report.extend(_iter_config_diagnostics(config, model, location))
    return report
