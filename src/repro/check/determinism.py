"""Double-run determinism harness — the flow pass's dynamic twin.

The REPRO6xx dataflow rules (:mod:`repro.check.flow`) catch hash-order
and wall-clock nondeterminism *statically*; this module catches what
slips past them *dynamically*: it runs the same seeded simulation twice
in subprocesses under two different ``PYTHONHASHSEED`` values and diffs
the artifacts that must not care — the wall-clock-free
:func:`~repro.obs.trace.trace_digest` of ``trace.jsonl`` and every key
of ``result.json``.  Any divergence means iteration order or hidden
global state leaked into the simulation, exactly the bug class the
static pass encodes.

CI wires this up as the ``determinism`` job::

    python -m repro.check.determinism --workdir /tmp/det --duration 8

Exit codes mirror the lint contract: **0** identical, **1** the runs
diverged, **2** a subprocess or setup failure (the failing command and
its stderr are printed).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.runs import RESULT_NAME, TRACE_NAME
from ..obs.trace import read_trace, trace_digest

__all__ = [
    "DEFAULT_HASH_SEEDS",
    "compare_runs",
    "double_run",
    "main",
    "run_digest",
]

#: Two deliberately different hash seeds; any fixed distinct pair works
#: because a hash-order dependence only needs *some* pair to disagree.
DEFAULT_HASH_SEEDS = (1, 4242)


def _cli(*args: str) -> List[str]:
    return [sys.executable, "-m", "repro", *args]


def _run(
    cmd: Sequence[str], hash_seed: Optional[int] = None
) -> "subprocess.CompletedProcess[str]":
    env = dict(os.environ)
    if hash_seed is not None:
        env["PYTHONHASHSEED"] = str(hash_seed)
    # The subprocess must import the same repro package as this process.
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        list(cmd), capture_output=True, text=True, env=env, check=False,
    )


class HarnessError(RuntimeError):
    """A subprocess or setup step failed (exit code 2 territory)."""


def _check(proc: "subprocess.CompletedProcess[str]") -> None:
    if proc.returncode != 0:
        raise HarnessError(
            f"command failed ({proc.returncode}): "
            f"{' '.join(proc.args)}\n{proc.stderr.strip()}"
        )


def run_digest(run_dir: str) -> Tuple[str, Dict[str, object]]:
    """``(trace_digest, result.json)`` of one recorded run directory."""
    digest = trace_digest(
        read_trace(os.path.join(run_dir, TRACE_NAME))
    )
    with open(
        os.path.join(run_dir, RESULT_NAME), encoding="utf-8"
    ) as handle:
        result = json.load(handle)
    return digest, result


def compare_runs(run_a: str, run_b: str) -> List[str]:
    """Human-readable mismatches between two recorded simulate runs.

    Empty list == the runs are byte-equivalent where determinism is
    promised: identical trace digests and identical ``result.json``
    content (key order aside).
    """
    digest_a, result_a = run_digest(run_a)
    digest_b, result_b = run_digest(run_b)
    mismatches: List[str] = []
    if digest_a != digest_b:
        mismatches.append(
            f"trace_digest differs: {digest_a[:16]}… vs {digest_b[:16]}…"
        )
    keys = sorted(set(result_a) | set(result_b))
    for key in keys:
        if key not in result_a:
            mismatches.append(f"result.json[{key!r}]: only in second run")
        elif key not in result_b:
            mismatches.append(f"result.json[{key!r}]: only in first run")
        elif result_a[key] != result_b[key]:
            mismatches.append(
                f"result.json[{key!r}]: {result_a[key]!r} != "
                f"{result_b[key]!r}"
            )
    return mismatches


def double_run(
    workdir: str,
    hash_seeds: Tuple[int, int] = DEFAULT_HASH_SEEDS,
    seed: int = 23,
    inputs: int = 2,
    ops_per_tree: int = 8,
    nodes: int = 3,
    rates: str = "40,40",
    duration: float = 8.0,
    step: float = 0.1,
    chaos_seed: Optional[int] = 7,
    failover: Optional[str] = "volume",
    elastic: bool = False,
) -> Dict[str, object]:
    """Generate, place, then simulate twice under different hash seeds.

    The graph and plan are written once (they are inputs, not what is
    under test); each simulate subprocess records a full run directory
    whose trace digest and result snapshot must agree bit for bit.
    With ``elastic`` the workload is the skewed pre-partitioned
    pipeline and each simulate runs the elasticity controller (key
    routing uses the stable unit hash, so the repartition path must be
    just as hash-seed-blind as everything else); ``--failover`` is
    dropped there (the controllers are mutually exclusive).
    Returns ``{"runs": [dir, dir], "mismatches": [...]}``.

    Raises :class:`HarnessError` when any subprocess fails.
    """
    os.makedirs(workdir, exist_ok=True)
    graph = os.path.join(workdir, "graph.json")
    plan = os.path.join(workdir, "plan.json")
    if elastic:
        # No failover (mutually exclusive controller) and no chaos: a
        # fault hitting the partitioned pipeline can mask the skew the
        # controller must react to, and the point here is exercising
        # the repartition path under both hash seeds.
        failover = None
        chaos_seed = None
        _check(_run(_cli(
            "generate", "--kind", "elastic", "-o", graph,
        )))
    else:
        _check(_run(_cli(
            "generate", "--kind", "random", "--inputs", str(inputs),
            "--ops-per-tree", str(ops_per_tree), "--seed", str(seed),
            "-o", graph,
        )))
    _check(_run(_cli(
        "place", "--graph", graph, "--nodes", str(nodes),
        "--algorithm", "rod", "-o", plan,
    )))

    record_root = os.path.join(workdir, "runs")
    run_dirs: List[str] = []
    for hash_seed in hash_seeds:
        run_id = f"det-hashseed-{hash_seed}"
        cmd = _cli(
            "simulate", "--graph", graph, "--plan", plan,
            "--rates", rates, "--duration", str(duration),
            "--step", str(step),
            "--record", record_root, "--run-id", run_id,
        )
        if chaos_seed is not None:
            cmd += ["--chaos-seed", str(chaos_seed)]
        if failover:
            cmd += ["--failover", failover]
        if elastic:
            cmd += ["--elastic"]
        _check(_run(cmd, hash_seed=hash_seed))
        run_dirs.append(os.path.join(record_root, run_id))

    return {
        "runs": run_dirs,
        "hash_seeds": list(hash_seeds),
        "mismatches": compare_runs(run_dirs[0], run_dirs[1]),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; see the module docstring for the CI wiring."""
    parser = argparse.ArgumentParser(
        prog="repro-determinism",
        description="run the same seeded simulate twice under two "
                    "PYTHONHASHSEED values and diff the artifacts",
    )
    parser.add_argument("--workdir", required=True,
                        help="scratch directory for artifacts and runs")
    parser.add_argument("--hash-seeds", default=None, metavar="A,B",
                        help="the two PYTHONHASHSEED values "
                             f"(default {DEFAULT_HASH_SEEDS[0]},"
                             f"{DEFAULT_HASH_SEEDS[1]})")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--duration", type=float, default=8.0)
    parser.add_argument("--rates", default=None,
                        help="tuples/second per input (default 40,40; "
                             "400 for --elastic's one-input pipeline)")
    parser.add_argument("--chaos-seed", type=int, default=7,
                        help="seeded chaos schedule for the runs "
                             "(-1 disables fault injection)")
    parser.add_argument("--elastic", action="store_true",
                        help="run the skewed partitioned pipeline under "
                             "the elasticity controller instead of the "
                             "random graph under failover")
    args = parser.parse_args(argv)
    if args.rates is None:
        args.rates = "400" if args.elastic else "40,40"

    hash_seeds = DEFAULT_HASH_SEEDS
    if args.hash_seeds:
        parts = [int(p) for p in args.hash_seeds.split(",")]
        if len(parts) != 2 or parts[0] == parts[1]:
            parser.error("--hash-seeds needs two distinct integers")
        hash_seeds = (parts[0], parts[1])

    try:
        outcome = double_run(
            args.workdir,
            hash_seeds=hash_seeds,
            seed=args.seed,
            rates=args.rates,
            duration=args.duration,
            chaos_seed=None if args.chaos_seed < 0 else args.chaos_seed,
            elastic=args.elastic,
        )
    except HarnessError as exc:
        print(f"determinism: {exc}", file=sys.stderr)  # noqa: REPRO505
        return 2
    # This *is* the console entry point; stdout is its interface.
    mismatches = list(outcome["mismatches"])  # type: ignore[arg-type]
    for line in mismatches:
        print(f"determinism: {line}")  # noqa: REPRO505
    runs = outcome["runs"]
    if mismatches:
        print(f"determinism: FAIL — {len(mismatches)} mismatch(es) "  # noqa: REPRO505
              f"between {runs[0]} and {runs[1]}")  # type: ignore[index]
        return 1
    print(f"determinism: OK — PYTHONHASHSEED {hash_seeds[0]} and "  # noqa: REPRO505
          f"{hash_seeds[1]} produced identical trace digests and "
          "result snapshots")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI job
    sys.exit(main())
