"""The REPRO6xx determinism/concurrency rules and REPRO61x schema rules.

All rules run over one parsed module at a time and return raw findings
(``{"code", "lineno", "message", "fix_hint"}`` dicts, same shape the
REPRO5xx lint visitor produces) — suppression and severity mapping
happen in :mod:`repro.check.lint`, which shares the ``noqa`` baseline
between both rule packs.

Dataflow rules (on :class:`~repro.check.flow.dataflow.FunctionFlow`):

* **REPRO600** — iteration order of a ``set``/``frozenset`` reaches a
  return value, an emitted trace event, or a score/cost computation
  without an intervening ``sorted()``.  Scoped to set-typed sources
  because dicts preserve insertion order since Python 3.7 — but a dict
  or list *built from* a set inherits the taint, so laundering the set
  through ``list()`` does not silence the rule.  Purely numeric
  accumulators (``total += x`` over an int-initialized name) collapse
  element order and are excluded; their float variant is REPRO604.
* **REPRO601** — a wall-clock reading (``time.time``,
  ``perf_counter``, ``datetime.now``, ...) flows into simulation,
  placement, or volume logic.  Readings whose uses all feed
  observability calls (``.emit(...)``, metric ``.set/.inc/.observe``,
  loggers) are exempt: profiling is what wall clocks are *for*.
* **REPRO604** — float accumulation (``acc += x`` with a float-typed
  init, or ``sum(...)``) over an unordered collection: IEEE addition
  is not associative, so the result depends on hash order.

Structural concurrency rules:

* **REPRO602** — a function submitted to ``parallel_map`` /
  ``executor.submit`` / a pool ``map`` mutates module-level state.
  Each worker process mutates its own copy; the parent never sees it.
* **REPRO603** — an RNG object (``random.Random``, ``default_rng``)
  is shared across worker-submitted closures or task payloads instead
  of deriving per-task seeds with ``repro.parallel.derive_seed``.

Schema-conformance rules (against :mod:`repro.obs.schema`):

* **REPRO610** — every ``tracer.emit("type", ...)`` with a literal
  event type must name a registered event and pass its declared
  fields (missing required / undeclared extras).  Sites that splat
  dynamic ``**fields`` skip the required-field check but still have
  their literal keys checked.
* **REPRO611** — every ``registry.counter/gauge/histogram(name, ...)``
  with a resolvable name must match the registered metric's kind and
  label tuple.  Names are resolved through module-level string
  constants (``PHASE_METRIC``), so aliasing does not evade the check.
* **REPRO612** — every ``.open_span(...)`` call must have its span id
  closed (``.close_span(id, ...)``) or handed off (passed to a call or
  constructor, returned, yielded, or stored into a container/field) on
  **every** control-flow path to the function exit.  A discarded or
  reassigned id is a span that can never be closed: the trace's causal
  forest grows an unclosable leaf and critical-path attribution counts
  phantom stranded work.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Severity
from .cfg import build_cfg
from .dataflow import (
    Definition,
    FunctionFlow,
    assigned_names,
    call_name,
    iter_functions,
    sorted_in_place_names,
)

__all__ = ["FLOW_CODES", "active_flow_codes", "analyze_module"]

#: code -> (severity, one-line summary), the flow-rule registry.
FLOW_CODES = {
    "REPRO600": (Severity.ERROR,
                 "unordered iteration order reaches an output"),
    "REPRO601": (Severity.WARNING,
                 "wall-clock reading in deterministic path"),
    "REPRO602": (Severity.ERROR,
                 "module-level state mutated in worker function"),
    "REPRO603": (Severity.ERROR,
                 "RNG object shared across worker tasks"),
    "REPRO604": (Severity.WARNING,
                 "order-dependent float accumulation over unordered "
                 "collection"),
    "REPRO610": (Severity.ERROR,
                 "trace emission violates the event schema registry"),
    "REPRO611": (Severity.ERROR,
                 "metric registration violates the metric schema "
                 "registry"),
    "REPRO612": (Severity.ERROR,
                 "span opened but not closed or handed off on every "
                 "path"),
}

#: ``repro`` sub-packages whose logic must be wall-clock-free: the
#: simulated clock and seeds are the only legitimate time sources
#: there.  ``repro.obs`` (whose job is wall-clock profiling),
#: experiments that measure solver wall time on purpose, and tooling
#: (``cli``, ``check``) are out of scope.
_WALL_CLOCK_SCOPE = frozenset({
    "simulator", "placement", "core", "dynamics", "faults", "workload",
    "graphs", "deploy",
})

_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "monotonic", "perf_counter", "process_time", "time_ns",
    "monotonic_ns", "perf_counter_ns", "process_time_ns",
})

_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Attribute-call names that consume wall-clock values legitimately:
#: observability emission and logging.  A reading whose only uses sit
#: inside these calls is profiling, not logic.
_OBS_CALL_ATTRS = frozenset({
    "emit", "observe", "set", "inc", "dec", "labels", "debug", "info",
    "warning", "error", "exception", "log",
})

_SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

_MUTATING_METHODS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft",
})

#: Callee names that are order-sensitive sinks besides return/yield:
#: trace emission feeds ``trace_digest``; score/cost helpers feed
#: placement decisions.
_SINK_CALL_ATTRS = frozenset({"emit"})
_SINK_NAME_FRAGMENTS = ("score", "cost", "objective")


def _is_test_path(path: Path) -> bool:
    parts = set(path.parts)
    return (
        "tests" in parts
        or "benchmarks" in parts
        or path.stem.startswith("test_")
        or path.stem == "conftest"
    )


def _finding(code: str, lineno: int, message: str,
             fix_hint: str) -> Dict[str, object]:
    return {"code": code, "lineno": lineno, "message": message,
            "fix_hint": fix_hint}


# --------------------------------------------------------------------------
# Shared small predicates
# --------------------------------------------------------------------------

def _is_set_expr(expr: ast.expr) -> bool:
    """Syntactically set-valued: literal, comprehension, constructor."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if isinstance(expr.func, ast.Name) and name in ("set", "frozenset"):
            return True
        if isinstance(expr.func, ast.Attribute) and name in _SET_METHODS:
            return True
    return False


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` -> ``"a.b.c"``; None for anything non-dotted."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_wall_clock_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call) or not isinstance(
        expr.func, ast.Attribute
    ):
        return False
    dotted = _dotted(expr.func)
    if dotted is None:
        return False
    head, _, attr = dotted.rpartition(".")
    if attr in _WALL_CLOCK_TIME_ATTRS and head.split(".")[-1] == "time":
        return True
    if attr in _WALL_CLOCK_DATETIME_ATTRS and (
        head.split(".")[-1] in ("datetime", "date")
    ):
        return True
    return False


def _is_rng_constructor(expr: ast.expr) -> bool:
    name = call_name(expr)
    return name in ("Random", "default_rng", "RandomState", "Generator")


def _enclosing_exempt_call(
    root: ast.AST, leaf: ast.AST, exempt: FrozenSet[str]
) -> bool:
    """True when ``leaf`` is inside an exempt call's arguments."""
    found = [False]

    def walk(node: ast.AST, inside: bool) -> bool:
        if node is leaf:
            found[0] = inside
            return True
        node_inside = inside
        if isinstance(node, ast.Call):
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name)
                else None
            )
            if attr in exempt:
                node_inside = True
        for child in ast.iter_child_nodes(node):
            if walk(child, node_inside):
                return True
        return False

    walk(root, False)
    return found[0]


def _numeric_accumulator_names(func: ast.AST) -> Set[str]:
    """Names initialized to a numeric constant and ``+=``-accumulated.

    ``total = 0`` / ``total = 0.0`` followed by ``total += x`` collapses
    element *order* (the REPRO600 concern); the float-precision order
    dependence of the ``0.0`` variant is REPRO604's separate report.
    """
    numeric_inits: Set[str] = set()
    augmented: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            value = node.value
            is_numeric = (
                isinstance(value, ast.Constant)
                and isinstance(value.value, (int, float))
                and not isinstance(value.value, bool)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("int", "float")
            )
            if is_numeric:
                for target in node.targets:
                    for name, kind in assigned_names(target):
                        if kind == "whole":
                            numeric_inits.add(name)
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            augmented.add(node.target.id)
    return numeric_inits & augmented


# --------------------------------------------------------------------------
# REPRO600 / REPRO604 — unordered iteration and float accumulation
# --------------------------------------------------------------------------

class _UnorderedResolver:
    """Decides whether an expression holds an unordered collection.

    Resolution is *syntactic through definition chains*: set literals
    and constructors are unordered; a name is unordered when a reaching
    definition's right-hand side resolves unordered; a call to an
    unknown function is unordered when any argument is (conservative
    interprocedural guess — ``helper(my_set)`` usually filters or maps
    it).  Crucially, element reads (``loads[j]``) and container
    mutations do **not** spread the property: holding a set and being
    derived *from a set's iteration order* are different facts, and
    conflating them (a value-taint formulation) flags every list a
    set-driven loop ever writes into.
    """

    def __init__(self, flow: FunctionFlow, sorted_names: Set[str]) -> None:
        self.flow = flow
        self.sorted_names = sorted_names

    def unordered(
        self,
        expr: ast.expr,
        reach: Dict[str, Set[Definition]],
        _visiting: Optional[Set[int]] = None,
    ) -> bool:
        if _visiting is None:
            _visiting = set()
        if _is_set_expr(expr):
            return True
        if isinstance(expr, ast.Name):
            if expr.id in self.sorted_names:
                return False
            for definition in reach.get(expr.id, ()):
                if id(definition) in _visiting:
                    continue
                _visiting.add(id(definition))
                stmt = definition.stmt
                value: Optional[ast.expr] = None
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    value = stmt.value
                if value is not None and self.unordered(
                    value, self.flow.reach_in(stmt), _visiting  # type: ignore[arg-type]
                ):
                    return True
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, _SET_BINOPS
        ):
            return self.unordered(expr.left, reach, _visiting) or \
                self.unordered(expr.right, reach, _visiting)
        if isinstance(expr, ast.IfExp):
            return self.unordered(expr.body, reach, _visiting) or \
                self.unordered(expr.orelse, reach, _visiting)
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in _ORDER_SANITIZER_NAMES and name not in (
                "set", "frozenset"
            ):
                return False
            return any(
                self.unordered(arg, reach, _visiting)
                for arg in expr.args
            )
        return False

    def comp_unordered(
        self, expr: ast.expr, reach: Dict[str, Set[Definition]]
    ) -> bool:
        """A comprehension/genexp whose outermost iterable is unordered."""
        if isinstance(
            expr,
            (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        ):
            return self.unordered(expr.generators[0].iter, reach)
        return False


#: Builtins that expose an iterable's element order as sequence order.
_ORDER_EXPOSING_CALLS = frozenset({
    "list", "tuple", "enumerate", "reversed", "iter", "next", "zip",
})

_ORDER_SANITIZER_NAMES = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "fsum",
    "set", "frozenset",
})


def _check_unordered_order(
    func: ast.AST, flow: FunctionFlow, findings: List[Dict[str, object]]
) -> None:
    sorted_names = sorted_in_place_names(func)
    resolver = _UnorderedResolver(flow, sorted_names)
    blocked = _numeric_accumulator_names(func) | sorted_names

    # Loops whose iterable is set-typed: their targets' order is the
    # hazard being tracked.
    hazard_loops: List[ast.stmt] = []
    for stmt in flow.statements():
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            reach = flow.reach_in(stmt)
            if resolver.unordered(stmt.iter, reach):
                hazard_loops.append(stmt)

    def order_seed(
        expr: ast.expr, reach: Dict[str, Set[Definition]]
    ) -> FrozenSet[object]:
        labels: Set[object] = set()
        # Comprehensions over unordered iterables originate order taint
        # (SetComp folds back to an unordered type, so it does not).
        if isinstance(
            expr, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
        ) and resolver.comp_unordered(expr, reach):
            labels.add(expr)
        # Conversions freeze the nondeterministic order into a sequence:
        # list(s), tuple(s), next(iter(s)), sep.join(s), s-subscripts.
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            exposing = name in _ORDER_EXPOSING_CALLS or (
                name == "join"
                and isinstance(expr.func, ast.Attribute)
            )
            if exposing and any(
                resolver.unordered(arg, reach) for arg in expr.args
            ):
                labels.add(expr)
        elif isinstance(expr, ast.Subscript) and resolver.unordered(
            expr.value, reach
        ):
            labels.add(expr)
        for stmt in hazard_loops:
            if expr is stmt.iter:
                labels.add(stmt)
        return frozenset(labels)

    order_taint = flow.taint(
        order_seed, sanitizers=_ORDER_SANITIZER_NAMES
    )
    for definition in order_taint:
        if definition.name in blocked:
            order_taint[definition] = set()

    # Sinks: return/yield values, .emit arguments, score/cost calls.
    reported: Set[int] = set()

    def report(origins: Set[object], sink_line: int, sink_kind: str
               ) -> None:
        for origin in origins:
            lineno = getattr(origin, "lineno", sink_line)
            if lineno in reported:
                continue
            reported.add(lineno)
            findings.append(_finding(
                "REPRO600", lineno,
                f"iteration order of an unordered collection reaches "
                f"{sink_kind} (line {sink_line}); set iteration order "
                f"varies with PYTHONHASHSEED",
                "iterate over sorted(...) or sort before the value "
                "escapes",
            ))

    def expr_origins(
        expr: ast.expr, reach: Dict[str, Set[Definition]]
    ) -> Set[object]:
        return flow.expr_labels(
            expr, reach, order_taint, order_seed,
            _ORDER_SANITIZER_NAMES,
        )

    for stmt in flow.statements():
        reach = flow.reach_in(stmt)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            origins = expr_origins(stmt.value, reach)
            if origins:
                report(origins, stmt.lineno, "a return value")
        for node in ast.walk(stmt):
            if isinstance(node, ast.Expr) and isinstance(
                node.value, (ast.Yield, ast.YieldFrom)
            ):
                value = node.value.value
                if value is not None:
                    origins = expr_origins(value, reach)
                    if origins:
                        report(origins, node.lineno, "a yielded value")
            if isinstance(node, ast.Call):
                attr = call_name(node)
                is_sink = attr in _SINK_CALL_ATTRS or (
                    attr is not None
                    and any(frag in attr.lower()
                            for frag in _SINK_NAME_FRAGMENTS)
                )
                if not is_sink:
                    continue
                origins = set()
                for arg in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    origins |= expr_origins(arg, reach)
                if origins:
                    kind = (
                        "an emitted trace event" if attr == "emit"
                        else f"a {attr}() computation"
                    )
                    report(origins, node.lineno, kind)


def _check_float_accumulation(
    func: ast.AST, flow: FunctionFlow, findings: List[Dict[str, object]]
) -> None:
    resolver = _UnorderedResolver(flow, sorted_in_place_names(func))

    # Float-initialized names: total = 0.0 / total = float(...)
    float_inits: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            value = node.value
            is_float = (
                isinstance(value, ast.Constant)
                and isinstance(value.value, float)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "float"
            )
            if is_float:
                for target in node.targets:
                    for name, kind in assigned_names(target):
                        if kind == "whole":
                            float_inits.add(name)

    for stmt in flow.statements():
        reach = flow.reach_in(stmt)
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and \
                resolver.unordered(stmt.iter, reach):
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, ast.AugAssign)
                    and isinstance(inner.op, (ast.Add, ast.Sub))
                    and isinstance(inner.target, ast.Name)
                    and inner.target.id in float_inits
                ):
                    findings.append(_finding(
                        "REPRO604", inner.lineno,
                        f"float accumulator '{inner.target.id}' summed "
                        f"over an unordered collection (loop at line "
                        f"{stmt.lineno}); float addition is not "
                        f"associative",
                        "iterate over sorted(...) or use math.fsum",
                    ))
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                arg = node.args[0]
                if resolver.unordered(arg, reach) or \
                        resolver.comp_unordered(arg, reach):
                    findings.append(_finding(
                        "REPRO604", node.lineno,
                        "sum() over an unordered collection is "
                        "order-dependent for floats",
                        "sum over sorted(...), or use math.fsum; for "
                        "provably-int sums add a justified noqa",
                    ))


# --------------------------------------------------------------------------
# REPRO601 — wall-clock readings in deterministic paths
# --------------------------------------------------------------------------

def _check_wall_clock(
    flow: FunctionFlow, findings: List[Dict[str, object]]
) -> None:
    def seed(expr: ast.expr, _reach: Dict[str, Set[Definition]]
             ) -> FrozenSet[object]:
        if _is_wall_clock_call(expr):
            return frozenset([expr])
        return frozenset()

    taint = flow.taint(seed, sanitizers=frozenset())
    reported: Set[int] = set()

    def report(origins: Set[object]) -> None:
        for origin in origins:
            key = id(origin)
            if key in reported:
                continue
            reported.add(key)
            findings.append(_finding(
                "REPRO601", getattr(origin, "lineno", 1),
                "wall-clock reading flows into deterministic logic; "
                "simulated time and seeds are the only clocks allowed "
                "here",
                "take time from the simulation clock, or confine the "
                "reading to obs emission (tracer.emit / metrics / "
                "logging)",
            ))

    for stmt in flow.statements():
        # Assignments only *propagate*; a reading becomes a finding
        # when it (or a value derived from it) is consumed outside an
        # observability call.
        if isinstance(
            stmt,
            (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.For,
             ast.AsyncFor, ast.With, ast.AsyncWith),
        ):
            continue
        reach = flow.reach_in(stmt)
        for node in ast.walk(stmt):
            origins: Set[object] = set()
            if _is_wall_clock_call(node):
                origins.add(node)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                for definition in reach.get(node.id, ()):
                    origins.update(taint.get(definition, ()))
            if origins and not _enclosing_exempt_call(
                stmt, node, _OBS_CALL_ATTRS
            ):
                report(origins)


# --------------------------------------------------------------------------
# REPRO602 / REPRO603 — cross-process state and RNG sharing
# --------------------------------------------------------------------------

def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name, kind in assigned_names(target):
                    if kind == "whole":
                        names.add(name)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            target = node.target
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _submitted_callables(
    tree: ast.Module,
) -> List[Tuple[ast.Call, ast.expr]]:
    """``(submission call, callable expr)`` for every worker handoff."""
    sites: List[Tuple[ast.Call, ast.expr]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        name = call_name(node)
        if name == "parallel_map" or name == "submit":
            sites.append((node, node.args[0]))
        elif name == "map" and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            receiver_name = (
                receiver.id if isinstance(receiver, ast.Name) else ""
            )
            if any(
                frag in receiver_name.lower()
                for frag in ("pool", "executor")
            ):
                sites.append((node, node.args[0]))
    # functools.partial(fn, ...) wrapping: unwrap to fn.
    unwrapped: List[Tuple[ast.Call, ast.expr]] = []
    for site, target in sites:
        if (
            isinstance(target, ast.Call)
            and call_name(target) == "partial"
            and target.args
        ):
            target = target.args[0]
        unwrapped.append((site, target))
    return unwrapped


def _local_names(func: ast.AST) -> Set[str]:
    """Names bound inside a function (params and assignments)."""
    names: Set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        for arg in (
            list(getattr(args, "posonlyargs", []) or [])
            + list(args.args) + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    elif isinstance(func, ast.Lambda):
        args = func.args
        for arg in list(args.args) + list(args.kwonlyargs):
            names.add(arg.arg)
        body_nodes = ast.walk(func.body)
        for node in body_nodes:
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name, kind in assigned_names(target):
                    if kind != "mutate":
                        names.add(name)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name, _kind in assigned_names(node.target):
                names.add(name)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name, _k in assigned_names(item.optional_vars):
                        names.add(name)
        elif isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names - declared_global


def _check_worker_global_mutation(
    tree: ast.Module, findings: List[Dict[str, object]]
) -> None:
    module_names = _module_level_names(tree)
    if not module_names:
        return
    module_funcs = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    checked: Set[str] = set()
    for _site, target in _submitted_callables(tree):
        func: Optional[ast.AST] = None
        if isinstance(target, ast.Name):
            func = module_funcs.get(target.id)
            if target.id in checked:
                continue
            checked.add(target.id)
        elif isinstance(target, ast.Lambda):
            func = target
        if func is None:
            continue
        func_label = getattr(func, "name", "<lambda>")
        locals_ = _local_names(func)
        globals_declared: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)

        def flag(name: str, node: ast.AST, how: str) -> None:
            findings.append(_finding(
                "REPRO602", getattr(node, "lineno", 1),
                f"worker function '{func_label}' {how} module-level "
                f"'{name}'; each worker process mutates its own copy, "
                f"silently diverging from the parent",
                "return the data from the task and merge in the "
                "parent, or pass state through task arguments",
            ))

        body = func.body if not isinstance(func, ast.Lambda) \
            else [ast.Expr(value=func.body)]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        for name, kind in assigned_names(tgt):
                            owns = name in module_names and (
                                name not in locals_
                                or name in globals_declared
                            )
                            if not owns:
                                continue
                            if kind == "mutate":
                                flag(name, node, "writes into")
                            elif name in globals_declared:
                                flag(name, node, "rebinds global")
                elif isinstance(node, ast.AugAssign):
                    for name, kind in assigned_names(node.target):
                        owns = name in module_names and (
                            name not in locals_
                            or name in globals_declared
                        )
                        if owns:
                            flag(name, node, "augments")
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                ):
                    name = node.func.value.id
                    if name in module_names and name not in locals_:
                        flag(name, node,
                             f"calls .{node.func.attr}() on")
                elif isinstance(node, ast.Delete):
                    for tgt in node.targets:
                        for name, kind in assigned_names(tgt):
                            if (
                                kind == "mutate"
                                and name in module_names
                                and name not in locals_
                            ):
                                flag(name, node, "deletes from")


def _rng_bound_names(scope: ast.AST) -> Set[str]:
    names: Set[str] = set()
    body = scope.body if isinstance(scope, ast.Module) else [scope]
    for root in body:
        for node in ast.walk(root):
            if isinstance(node, ast.Assign) and _is_rng_constructor(
                node.value
            ):
                for target in node.targets:
                    for name, kind in assigned_names(target):
                        if kind == "whole":
                            names.add(name)
    return names


def _check_shared_rng(
    tree: ast.Module, findings: List[Dict[str, object]]
) -> None:
    module_rngs = _rng_bound_names(tree)
    module_funcs = {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    # Map each submission site to its enclosing function (for local
    # RNG names visible to closures).
    enclosing: Dict[int, ast.AST] = {}
    for func in iter_functions(tree):
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                enclosing.setdefault(id(node), func)

    hint = (
        "pass (seed, index) in each task and build the RNG inside the "
        "worker with repro.parallel.derive_seed"
    )
    for site, target in _submitted_callables(tree):
        outer = enclosing.get(id(site))
        visible_rngs = set(module_rngs)
        if outer is not None:
            visible_rngs |= _rng_bound_names(outer)
        if isinstance(target, ast.Lambda):
            free = {
                node.id
                for node in ast.walk(target.body)
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
            } - _local_names(target)
            shared = sorted(free & visible_rngs)
            if shared:
                findings.append(_finding(
                    "REPRO603", target.lineno,
                    f"closure submitted to workers captures RNG "
                    f"object(s) {shared}; each process reseeds its own "
                    f"copy, so streams collide or diverge",
                    hint,
                ))
        elif isinstance(target, ast.Name):
            func = module_funcs.get(target.id)
            if func is not None:
                locals_ = _local_names(func)
                used = {
                    node.id
                    for node in ast.walk(func)
                    if isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                } - locals_
                shared = sorted(used & module_rngs)
                if shared:
                    findings.append(_finding(
                        "REPRO603", site.lineno,
                        f"worker function '{target.id}' reads "
                        f"module-level RNG object(s) {shared}; every "
                        f"process gets an identical (or unpicklable) "
                        f"stream",
                        hint,
                    ))
        # RNG objects riding in the task payload defeat per-task
        # seeding the same way.
        if len(site.args) >= 2:
            payload_rngs = sorted({
                node.id
                for node in ast.walk(site.args[1])
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in visible_rngs
            })
            if payload_rngs:
                findings.append(_finding(
                    "REPRO603", site.args[1].lineno,
                    f"task payload carries RNG object(s) "
                    f"{payload_rngs} into workers",
                    hint,
                ))


# --------------------------------------------------------------------------
# REPRO610 / REPRO611 — observability schema conformance
# --------------------------------------------------------------------------

def _module_str_consts(tree: ast.Module) -> Dict[str, str]:
    consts: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Constant
        ) and isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    consts[target.id] = node.value.value
    return consts


def _literal_keys(call: ast.Call) -> Tuple[Set[str], bool]:
    """Literal field names of an emit call and whether extras are dynamic."""
    keys: Set[str] = set()
    dynamic = False
    for kw in call.keywords:
        if kw.arg is not None:
            if kw.arg != "t":
                keys.add(kw.arg)
        elif isinstance(kw.value, ast.Dict) and all(
            isinstance(k, ast.Constant) and isinstance(k.value, str)
            for k in kw.value.keys
        ):
            keys.update(k.value for k in kw.value.keys)  # type: ignore
        else:
            dynamic = True
    return keys, dynamic


def _check_event_schemas(
    tree: ast.Module, findings: List[Dict[str, object]]
) -> None:
    from repro.obs import schema as obs_schema

    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue
        if len(node.args) > 2:
            continue  # not the Tracer.emit signature
        type_ = node.args[0].value
        declared = obs_schema.EVENT_SCHEMAS.get(type_)
        if declared is None:
            findings.append(_finding(
                "REPRO610", node.lineno,
                f"trace event type '{type_}' is not declared in "
                f"repro.obs.schema.EVENT_SCHEMAS",
                "declare the event (type, required/optional fields) in "
                "the schema registry before emitting it",
            ))
            continue
        keys, dynamic = _literal_keys(node)
        if not declared.extra_allowed:
            extras = sorted(keys - declared.fields)
            if extras:
                findings.append(_finding(
                    "REPRO610", node.lineno,
                    f"trace event '{type_}' emitted with undeclared "
                    f"field(s) {extras}",
                    "declare the fields in repro.obs.schema or drop "
                    "them",
                ))
        if not dynamic:
            missing = sorted(declared.required - keys)
            if missing:
                findings.append(_finding(
                    "REPRO610", node.lineno,
                    f"trace event '{type_}' emitted without required "
                    f"field(s) {missing}",
                    "pass every required field declared in "
                    "repro.obs.schema",
                ))


def _static_labels(call: ast.Call) -> Tuple[Optional[Tuple[str, ...]], bool]:
    """``(labels, resolvable)`` from a registration call's arguments."""
    label_expr: Optional[ast.expr] = None
    if len(call.args) >= 3:
        label_expr = call.args[2]
    for kw in call.keywords:
        if kw.arg == "labelnames":
            label_expr = kw.value
    if label_expr is None:
        return (), True
    if isinstance(label_expr, (ast.Tuple, ast.List)):
        if all(
            isinstance(el, ast.Constant) and isinstance(el.value, str)
            for el in label_expr.elts
        ):
            return tuple(
                el.value for el in label_expr.elts  # type: ignore
            ), True
    return None, False


def _check_metric_schemas(
    tree: ast.Module, findings: List[Dict[str, object]]
) -> None:
    from repro.obs import schema as obs_schema

    consts = _module_str_consts(tree)
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("counter", "gauge", "histogram")
            and node.args
        ):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(
            first.value, str
        ):
            name = first.value
        elif isinstance(first, ast.Name) and first.id in consts:
            name = consts[first.id]
        else:
            continue  # dynamically computed name: runtime twin catches it
        kind = node.func.attr
        declared = obs_schema.METRIC_SCHEMAS.get(name)
        if declared is None:
            findings.append(_finding(
                "REPRO611", node.lineno,
                f"metric '{name}' is not declared in "
                f"repro.obs.schema.METRIC_SCHEMAS",
                "declare the metric (name, kind, labels) in the schema "
                "registry before registering it",
            ))
            continue
        if declared.kind != kind:
            findings.append(_finding(
                "REPRO611", node.lineno,
                f"metric '{name}' is declared as a {declared.kind} but "
                f"registered as a {kind}",
                "match the declared kind or fix the declaration",
            ))
        labels, resolvable = _static_labels(node)
        if resolvable and labels != declared.labels:
            findings.append(_finding(
                "REPRO611", node.lineno,
                f"metric '{name}' declares labels "
                f"{list(declared.labels)} but is registered with "
                f"{list(labels or ())}",
                "match the declared label tuple exactly",
            ))


# --------------------------------------------------------------------------
# REPRO612 — span lifecycle: every open is closed or handed off
# --------------------------------------------------------------------------

def _is_span_call(node: ast.AST, attr: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and (
            (isinstance(node.func, ast.Attribute) and node.func.attr == attr)
            or (isinstance(node.func, ast.Name) and node.func.id == attr)
        )
    )


def _name_loaded_in(expr: ast.AST, name: str) -> bool:
    return any(
        isinstance(node, ast.Name)
        and node.id == name
        and isinstance(node.ctx, ast.Load)
        for node in ast.walk(expr)
    )


def _shallow_nodes(stmt: ast.stmt) -> List[ast.AST]:
    """The statement's own expressions, nested statement bodies excluded.

    CFG blocks hold compound headers (``For``, ``With``) whose AST still
    contains the nested body that other blocks already carry — walking
    the whole node would double-count, and worse, credit a close inside
    a loop body (which may run zero times) to the header's path.
    """
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        nodes: List[ast.AST] = []
        for item in stmt.items:
            nodes.append(item.context_expr)
            if item.optional_vars is not None:
                nodes.append(item.optional_vars)
        return nodes
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []  # separate scope; closure capture handled explicitly
    return [stmt]


def _stmt_resolves_span(stmt: ast.stmt, name: str) -> bool:
    """True when ``stmt`` closes the span id or hands it off.

    Hand-offs that satisfy the rule: the id rides into any call or
    constructor (argument or keyword — ``_Batch(..., span=span)``), is
    returned or yielded, is stored into a subscript / attribute /
    container literal, is aliased whole to another name, or is captured
    by a nested function definition (the closure keeps it reachable).
    A bare read (``if span >= 0``) keeps nothing alive and does not
    count.
    """
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return _name_loaded_in(stmt, name)
    for root in _shallow_nodes(stmt):
        if _walk_resolves(root, name):
            return True
    return False


def _walk_resolves(root: ast.AST, name: str) -> bool:
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _name_loaded_in(arg, name):
                    return True
        elif isinstance(node, ast.Return):
            if node.value is not None and _name_loaded_in(node.value, name):
                return True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None and _name_loaded_in(node.value, name):
                return True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            stored = any(
                isinstance(t, (ast.Subscript, ast.Attribute))
                for t in targets
            )
            value = node.value
            if value is None:
                continue
            if stored and _name_loaded_in(value, name):
                return True
            if isinstance(
                value, (ast.Tuple, ast.List, ast.Set, ast.Dict)
            ) and _name_loaded_in(value, name):
                return True
            if isinstance(value, ast.Name) and value.id == name:
                return True  # whole alias: the new name carries the id
    return False


def _stmt_kills_span(stmt: ast.stmt, name: str) -> bool:
    """True when ``stmt`` rebinds ``name``, losing the original id."""
    if isinstance(stmt, ast.Assign):
        return any(
            n == name and kind == "whole"
            for target in stmt.targets
            for n, kind in assigned_names(target)
        )
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        target = stmt.target
        return isinstance(target, ast.Name) and target.id == name
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return any(
            n == name and kind == "whole"
            for n, kind in assigned_names(stmt.target)
        )
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return any(
            n == name and kind == "whole"
            for item in stmt.items
            if item.optional_vars is not None
            for n, kind in assigned_names(item.optional_vars)
        )
    return False


def _span_leaks(cfg, block, start_index: int, name: str) -> bool:
    """Does some path from here reach the exit without close/hand-off?

    Depth-first over basic blocks; a back edge (block already on the
    DFS stack) contributes nothing — a pure cycle never reaches the
    exit.  A rebind of the name is an immediate leak: the original id
    is unrecoverable past it.
    """
    stack: Set[int] = set()

    def from_block(current, index: int) -> bool:
        for stmt in current.statements[index:]:
            if _stmt_resolves_span(stmt, name):
                return False
            if _stmt_kills_span(stmt, name):
                return True
        if current is cfg.exit:
            return True
        if current.index in stack:
            return False
        stack.add(current.index)
        try:
            return any(
                from_block(successor, 0)
                for successor in current.successors
            )
        finally:
            stack.discard(current.index)

    return from_block(block, start_index)


def _check_span_lifecycle(
    tree: ast.Module, findings: List[Dict[str, object]]
) -> None:
    hint = (
        "close the span with close_span(id, ...) on every path, or "
        "hand the id off (pass, return, or store it) so a downstream "
        "close can reach it"
    )
    for func in iter_functions(tree):
        cfg = build_cfg(func)
        for block in cfg.blocks:
            for index, stmt in enumerate(block.statements):
                calls = [
                    node
                    for root in _shallow_nodes(stmt)
                    for node in ast.walk(root)
                    if _is_span_call(node, "open_span")
                ]
                for call in calls:
                    name: Optional[str] = None
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        targets = (
                            stmt.targets if isinstance(stmt, ast.Assign)
                            else [stmt.target]
                        )
                        if (
                            len(targets) == 1
                            and isinstance(targets[0], ast.Name)
                        ):
                            name = targets[0].id
                        else:
                            continue  # stored/unpacked: a hand-off
                    elif isinstance(stmt, ast.Expr) and stmt.value is call:
                        findings.append(_finding(
                            "REPRO612", call.lineno,
                            "open_span() result is discarded; the span "
                            "can never be closed",
                            hint,
                        ))
                        continue
                    else:
                        # Nested in a return/call/etc. — the id escapes
                        # at the open site itself.
                        continue
                    if _span_leaks(cfg, block, index + 1, name):
                        findings.append(_finding(
                            "REPRO612", call.lineno,
                            f"span id '{name}' from open_span() can "
                            f"reach the function exit without "
                            f"close_span() or a hand-off on some path",
                            hint,
                        ))


# --------------------------------------------------------------------------
# Module entry point
# --------------------------------------------------------------------------

def _in_wall_clock_scope(path: Path) -> bool:
    return (
        "repro" in path.parts
        and "obs" not in path.parts
        and "experiments" not in path.parts
        and "check" not in path.parts
        and any(layer in path.parts for layer in _WALL_CLOCK_SCOPE)
        and not _is_test_path(path)
    )


def active_flow_codes(path: Path) -> Set[str]:
    """The flow codes that actually run over this file.

    Stale-suppression detection (``REPRO507``) must only judge a
    ``noqa`` against rules that had a chance to fire there.
    """
    codes = {
        "REPRO600", "REPRO602", "REPRO603", "REPRO604", "REPRO610",
        "REPRO611", "REPRO612",
    }
    if _in_wall_clock_scope(path):
        codes.add("REPRO601")
    return codes


def analyze_module(
    tree: ast.Module, path: Path
) -> List[Dict[str, object]]:
    """All raw flow findings for one parsed module."""
    findings: List[Dict[str, object]] = []
    wall_clock_scope = _in_wall_clock_scope(path)
    for func in iter_functions(tree):
        flow = FunctionFlow(func)
        _check_unordered_order(func, flow, findings)
        _check_float_accumulation(func, flow, findings)
        if wall_clock_scope:
            _check_wall_clock(flow, findings)
    _check_worker_global_mutation(tree, findings)
    _check_shared_rng(tree, findings)
    _check_event_schemas(tree, findings)
    _check_metric_schemas(tree, findings)
    _check_span_lifecycle(tree, findings)
    return findings
