"""Reaching definitions and taint propagation over function CFGs.

:class:`FunctionFlow` solves classic intra-procedural reaching
definitions with a worklist over the basic blocks of a
:class:`~repro.check.flow.cfg.ControlFlowGraph`, then exposes the
def-use facts the rules need:

* ``reach_in(stmt)`` — which :class:`Definition` of each name can reach
  a statement;
* :meth:`FunctionFlow.taint` — a labeled forward taint pass: the caller
  seeds definitions (each with a hashable *label*, typically the AST
  node that originated the hazard), names sanitizer call names
  (``sorted`` et al.), and gets back ``Definition -> {labels}``.

Taint deliberately over-approximates in two places.  Mutating a tainted
value into a container (``acc.append(x)``; ``acc[k] = x``) taints every
definition of the container that reaches the mutation — flow-insensitive
for the container, which only ever *adds* findings.  And a name with
several reaching definitions is tainted if *any* of them is.  Both err
toward reporting, which is the right polarity for a determinism linter:
the suppression syntax (``# noqa: REPRO6xx`` + justification) is the
escape hatch.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from .cfg import ControlFlowGraph, FunctionNode, build_cfg

__all__ = [
    "Definition",
    "FunctionFlow",
    "ORDER_SANITIZERS",
    "assigned_names",
    "call_name",
    "iter_functions",
    "sorted_in_place_names",
]

#: Call names whose result does not depend on the iteration order of
#: their argument: sorting imposes an order, the others collapse the
#: collection to an order-free scalar or back to an unordered type.
#: (``sum`` over *floats* is order-dependent numerically — that is rule
#: REPRO604's domain, not REPRO600's element-order domain.)
ORDER_SANITIZERS = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set",
    "frozenset", "fsum",
})

#: Method names that mutate their receiver with their arguments.
_MUTATORS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "appendleft", "push",
})


class Definition:
    """One binding of a name: a parameter or a defining statement."""

    __slots__ = ("name", "stmt", "kind")

    def __init__(self, name: str, stmt: Optional[ast.AST],
                 kind: str) -> None:
        self.name = name
        self.stmt = stmt
        self.kind = kind  # "param" | "assign" | "for" | "with" | ...

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lineno = getattr(self.stmt, "lineno", "?")
        return f"<def {self.name}@{lineno} ({self.kind})>"


def call_name(node: ast.expr) -> Optional[str]:
    """The trailing identifier of a call target, or ``None``.

    ``sorted(...)`` -> ``"sorted"``; ``math.fsum(...)`` -> ``"fsum"``;
    anything fancier (subscripts, calls-of-calls) -> ``None``.
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def assigned_names(target: ast.expr) -> List[Tuple[str, str]]:
    """``(name, kind)`` pairs bound by an assignment target.

    ``kind`` is ``"whole"`` for a plain name, ``"unpack"`` inside
    tuple/list/starred targets (each element sees one item of the
    value, which matters for taint through unpacking — it propagates
    either way), and ``"mutate"`` for subscript/attribute stores, which
    mutate an existing object rather than rebinding a name.
    """
    out: List[Tuple[str, str]] = []

    def walk(node: ast.expr, kind: str) -> None:
        if isinstance(node, ast.Name):
            out.append((node.id, kind))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                walk(element, "unpack")
        elif isinstance(node, ast.Starred):
            walk(node.value, "unpack")
        elif isinstance(node, (ast.Subscript, ast.Attribute)):
            base = node.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                out.append((base.id, "mutate"))

    walk(target, "whole")
    return out


def _stmt_defs(stmt: ast.stmt) -> List[Tuple[str, str]]:
    """Names (re)bound by one statement, with their binding kind."""
    defs: List[Tuple[str, str]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            defs.extend(assigned_names(target))
    elif isinstance(stmt, ast.AugAssign):
        for name, kind in assigned_names(stmt.target):
            defs.append((name, "aug" if kind == "whole" else kind))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            defs.extend(assigned_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name, _kind in assigned_names(stmt.target):
            defs.append((name, "for"))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name, _kind in assigned_names(item.optional_vars):
                    defs.append((name, "with"))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        defs.append((stmt.name, "def"))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            defs.append((bound, "import"))
    # Walrus targets anywhere in the statement's expressions.
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            defs.append((node.target.id, "walrus"))
    return defs


def iter_functions(tree: ast.AST) -> Iterable[FunctionNode]:
    """Every function/method definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class FunctionFlow:
    """Reaching-definitions facts plus taint propagation for one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.cfg: ControlFlowGraph = build_cfg(func)
        self._param_defs: List[Definition] = [
            Definition(arg.arg, arg, "param")
            for arg in self._all_args(func.args)
        ]
        #: stmt (by identity) -> its Definition objects
        self._defs_of: Dict[int, List[Definition]] = {}
        for stmt in self.cfg.statements():
            self._defs_of[id(stmt)] = [
                Definition(name, stmt, kind)
                for name, kind in _stmt_defs(stmt)
                if kind != "mutate"  # mutation is not a rebinding
            ]
        #: stmt (by identity) -> name -> reaching Definitions
        self._reach_in: Dict[int, Dict[str, Set[Definition]]] = {}
        self._solve()

    # ------------------------------------------------------------ solving

    @staticmethod
    def _all_args(args: ast.arguments) -> List[ast.arg]:
        every = list(getattr(args, "posonlyargs", []) or [])
        every += list(args.args)
        if args.vararg:
            every.append(args.vararg)
        every += list(args.kwonlyargs)
        if args.kwarg:
            every.append(args.kwarg)
        return every

    def _solve(self) -> None:
        entry_state: Dict[str, Set[Definition]] = {}
        for definition in self._param_defs:
            entry_state.setdefault(definition.name, set()).add(definition)

        in_states: Dict[int, Dict[str, Set[Definition]]] = {
            block.index: {} for block in self.cfg.blocks
        }
        in_states[self.cfg.entry.index] = entry_state
        out_states: Dict[int, Dict[str, Set[Definition]]] = {}

        worklist = list(self.cfg.blocks)
        while worklist:
            block = worklist.pop(0)
            state = {
                name: set(defs)
                for name, defs in in_states[block.index].items()
            }
            for stmt in block.statements:
                self._reach_in[id(stmt)] = {
                    name: set(defs) for name, defs in state.items()
                }
                new_defs = self._defs_of[id(stmt)]
                for definition in new_defs:
                    # Strong update: a rebinding kills prior defs of the
                    # name.  AugAssign both uses and rebinds; callers
                    # see the old defs via reach_in of the statement.
                    state[definition.name] = {definition}
            if out_states.get(block.index) == state:
                continue
            out_states[block.index] = state
            for succ in block.successors:
                merged = in_states[succ.index]
                changed = False
                for name, defs in state.items():
                    have = merged.setdefault(name, set())
                    if not defs.issubset(have):
                        have.update(defs)
                        changed = True
                if changed and succ not in worklist:
                    worklist.append(succ)

    # ------------------------------------------------------------ queries

    def statements(self) -> List[ast.stmt]:
        return self.cfg.statements()

    def reach_in(self, stmt: ast.stmt) -> Dict[str, Set[Definition]]:
        return self._reach_in.get(id(stmt), {})

    def defs_of(self, stmt: ast.stmt) -> List[Definition]:
        return self._defs_of.get(id(stmt), [])

    # -------------------------------------------------------------- taint

    def taint(
        self,
        seed: Callable[[ast.expr, Dict[str, Set[Definition]]],
                       FrozenSet[object]],
        sanitizers: FrozenSet[str] = ORDER_SANITIZERS,
    ) -> Dict[Definition, Set[object]]:
        """Labeled forward taint: which definitions carry which hazards.

        ``seed(expr, reach)`` is consulted for every defining
        right-hand side and iterable; it returns the labels that
        expression *originates* (empty frozenset for "nothing").
        Labels then propagate through assignments, unpacking,
        aug-assignments, loop targets, and container mutation, and are
        stopped by calls to ``sanitizers``.
        """
        tainted: Dict[Definition, Set[object]] = {}
        changed = True
        while changed:
            changed = False
            for stmt in self.cfg.statements():
                reach = self.reach_in(stmt)
                labels = self._stmt_value_labels(
                    stmt, reach, tainted, seed, sanitizers
                )
                if labels:
                    for definition in self.defs_of(stmt):
                        have = tainted.setdefault(definition, set())
                        if not labels.issubset(have):
                            have.update(labels)
                            changed = True
                # Container mutation: x.append(tainted) / x[k] = tainted
                changed |= self._propagate_mutations(
                    stmt, reach, tainted, seed, sanitizers
                )
        return tainted

    def expr_labels(
        self,
        expr: ast.expr,
        reach: Dict[str, Set[Definition]],
        tainted: Dict[Definition, Set[object]],
        seed: Callable[[ast.expr, Dict[str, Set[Definition]]],
                       FrozenSet[object]],
        sanitizers: FrozenSet[str],
    ) -> Set[object]:
        """Labels carried by one expression under the current taint map."""
        labels: Set[object] = set(seed(expr, reach))
        membership = _membership_containers(expr)
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if node in membership or self._sanitized(
                    expr, node, sanitizers
                ):
                    continue
                for definition in reach.get(node.id, ()):
                    labels.update(tainted.get(definition, ()))
            elif node is not expr:
                inner = seed(node, reach)  # type: ignore[arg-type]
                if inner and not self._sanitized(expr, node, sanitizers):
                    labels.update(inner)
        return labels

    # ----------------------------------------------------------- internal

    def _stmt_value_labels(
        self,
        stmt: ast.stmt,
        reach: Dict[str, Set[Definition]],
        tainted: Dict[Definition, Set[object]],
        seed: Callable[[ast.expr, Dict[str, Set[Definition]]],
                       FrozenSet[object]],
        sanitizers: FrozenSet[str],
    ) -> Set[object]:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            value = stmt.value
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            value = stmt.iter
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            labels: Set[object] = set()
            for item in stmt.items:
                if item.optional_vars is not None:
                    labels |= self.expr_labels(
                        item.context_expr, reach, tainted, seed,
                        sanitizers,
                    )
            return labels
        if value is None:
            return set()
        labels = self.expr_labels(value, reach, tainted, seed, sanitizers)
        if isinstance(stmt, ast.AugAssign):
            # x += e keeps whatever taint x already carried.
            for name, kind in assigned_names(stmt.target):
                if kind in ("whole", "aug"):
                    for definition in reach.get(name, ()):
                        labels |= tainted.get(definition, set())
        return labels

    def _propagate_mutations(
        self,
        stmt: ast.stmt,
        reach: Dict[str, Set[Definition]],
        tainted: Dict[Definition, Set[object]],
        seed: Callable[[ast.expr, Dict[str, Set[Definition]]],
                       FrozenSet[object]],
        sanitizers: FrozenSet[str],
    ) -> bool:
        changed = False

        def taint_receiver(name: str, labels: Set[object]) -> None:
            nonlocal changed
            for definition in reach.get(name, ()):
                have = tainted.setdefault(definition, set())
                if not labels.issubset(have):
                    have.update(labels)
                    changed = True

        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
            ):
                labels: Set[object] = set()
                for arg in node.args:
                    labels |= self.expr_labels(
                        arg, reach, tainted, seed, sanitizers
                    )
                if labels:
                    taint_receiver(node.func.value.id, labels)
        # Subscript/attribute stores: base object mutated in place.
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        for target in targets:
            for name, kind in assigned_names(target):
                if kind != "mutate":
                    continue
                value = (
                    stmt.value
                    if isinstance(stmt, (ast.Assign, ast.AugAssign))
                    else None
                )
                if value is None:
                    continue
                labels = self.expr_labels(
                    value, reach, tainted, seed, sanitizers
                )
                if labels:
                    taint_receiver(name, labels)
        return changed

    @staticmethod
    def _sanitized(
        root: ast.expr, leaf: ast.AST, sanitizers: FrozenSet[str]
    ) -> bool:
        """True when ``leaf`` sits inside a sanitizer call within ``root``."""
        path = _path_to(root, leaf)
        if path is None:
            return False
        for ancestor in path[:-1]:
            name = call_name(ancestor) if isinstance(
                ancestor, ast.Call
            ) else None
            if name in sanitizers:
                return True
        return False


def _membership_containers(expr: ast.expr) -> Set[ast.AST]:
    """Container operands of ``in``/``not in`` tests within ``expr``.

    Membership is order-insensitive, so using a set as the right side
    of ``x in s`` must not propagate order taint to the result.
    """
    containers: Set[ast.AST] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    containers.add(comparator)
                    containers.update(ast.walk(comparator))
    return containers


def sorted_in_place_names(func: ast.AST) -> Set[str]:
    """Names that receive an in-place ``.sort()`` in this function.

    Approximation: one ``xs.sort()`` anywhere makes every def of ``xs``
    order-safe.  A sort *before* a tainting append would be missed, but
    that shape does not survive review anyway — and the alternative
    (ignoring ``.sort()``) flags every build-then-sort pipeline.
    """
    names: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
            and isinstance(node.func.value, ast.Name)
        ):
            names.add(node.func.value.id)
    return names


def _path_to(root: ast.AST, leaf: ast.AST) -> Optional[List[ast.AST]]:
    """Ancestor chain from ``root`` down to ``leaf`` (both inclusive)."""
    if root is leaf:
        return [root]
    for child in ast.iter_child_nodes(root):
        sub = _path_to(child, leaf)
        if sub is not None:
            return [root] + sub
    return None
