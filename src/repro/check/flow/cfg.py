"""Per-function control-flow graphs over Python ASTs.

The flow rules (:mod:`repro.check.flow.rules`) need to know *where
values go*, not just which tokens appear — so each function body is
lowered to a :class:`ControlFlowGraph` of basic blocks whose statement
lists the reaching-definitions solver walks in order.

The lowering is deliberately coarse where coarseness is conservative:

* ``if``/``while`` tests become pseudo-statements (an ``ast.Expr``
  wrapping the test) so their *uses* are visible to def-use chains;
* ``for`` headers stay in the graph as the loop's defining statement
  (they bind the loop target from the iterable);
* ``try`` bodies edge into every handler from the block that precedes
  the ``try`` *and* from the body's end — any prefix of the body may
  have run when a handler is entered;
* nested function/class definitions are single statements that bind a
  name; their bodies are analyzed separately.

``break``/``continue``/``return``/``raise`` terminate their block with
the appropriate edge, so definitions never "flow around" a loop exit
they could not actually survive.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Union

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg", "FunctionNode"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class BasicBlock:
    """A straight-line run of statements with CFG edges."""

    __slots__ = ("index", "statements", "successors", "predecessors")

    def __init__(self, index: int) -> None:
        self.index = index
        self.statements: List[ast.stmt] = []
        self.successors: List["BasicBlock"] = []
        self.predecessors: List["BasicBlock"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<block {self.index}: {len(self.statements)} stmt(s) "
            f"-> {[b.index for b in self.successors]}>"
        )


class ControlFlowGraph:
    """All basic blocks of one function, entry first."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    @staticmethod
    def add_edge(source: BasicBlock, target: BasicBlock) -> None:
        if target not in source.successors:
            source.successors.append(target)
            target.predecessors.append(source)

    def statements(self) -> List[ast.stmt]:
        """Every statement in the graph, in block order."""
        return [s for block in self.blocks for s in block.statements]


class _LoopContext:
    __slots__ = ("header", "after")

    def __init__(self, header: BasicBlock, after: BasicBlock) -> None:
        self.header = header
        self.after = after


class _Builder:
    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self._loops: List[_LoopContext] = []

    # ------------------------------------------------------------- helpers

    def _test_stmt(self, test: ast.expr) -> ast.stmt:
        """Wrap a condition expression as a visible pseudo-statement."""
        stmt = ast.Expr(value=test)
        ast.copy_location(stmt, test)
        return stmt

    # ------------------------------------------------------------ building

    def build(self, body: Sequence[ast.stmt]) -> ControlFlowGraph:
        cursor: Optional[BasicBlock] = self.cfg.entry
        cursor = self.visit_body(body, cursor)
        if cursor is not None:
            self.cfg.add_edge(cursor, self.cfg.exit)
        return self.cfg

    def visit_body(
        self, body: Sequence[ast.stmt], cursor: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        for stmt in body:
            if cursor is None:
                # Unreachable code after return/raise/break; still give
                # it a block so its findings are not silently dropped.
                cursor = self.cfg.new_block()
            cursor = self.visit_stmt(stmt, cursor)
        return cursor

    def visit_stmt(
        self, stmt: ast.stmt, cursor: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, cursor)
        if isinstance(stmt, ast.While):
            return self._visit_while(stmt, cursor)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, cursor)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, cursor)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cursor.statements.append(stmt)
            return self.visit_body(stmt.body, cursor)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cursor.statements.append(stmt)
            self.cfg.add_edge(cursor, self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            cursor.statements.append(stmt)
            if self._loops:
                self.cfg.add_edge(cursor, self._loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            cursor.statements.append(stmt)
            if self._loops:
                self.cfg.add_edge(cursor, self._loops[-1].header)
            return None
        # Simple statements — including nested FunctionDef/ClassDef,
        # which bind a name here and are analyzed separately.
        cursor.statements.append(stmt)
        return cursor

    def _visit_if(
        self, stmt: ast.If, cursor: BasicBlock
    ) -> Optional[BasicBlock]:
        cursor.statements.append(self._test_stmt(stmt.test))
        then_entry = self.cfg.new_block()
        self.cfg.add_edge(cursor, then_entry)
        then_exit = self.visit_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            self.cfg.add_edge(cursor, else_entry)
            else_exit = self.visit_body(stmt.orelse, else_entry)
        else:
            else_exit = cursor
        if then_exit is None and else_exit is None:
            return None
        join = self.cfg.new_block()
        if then_exit is not None:
            self.cfg.add_edge(then_exit, join)
        if else_exit is not None:
            self.cfg.add_edge(else_exit, join)
        return join

    def _visit_while(
        self, stmt: ast.While, cursor: BasicBlock
    ) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        self.cfg.add_edge(cursor, header)
        header.statements.append(self._test_stmt(stmt.test))
        after = self.cfg.new_block()
        self.cfg.add_edge(header, after)
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(header, body_entry)
        self._loops.append(_LoopContext(header, after))
        body_exit = self.visit_body(stmt.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            self.cfg.add_edge(body_exit, header)
        if stmt.orelse:
            return self.visit_body(stmt.orelse, after)
        return after

    def _visit_for(
        self, stmt: Union[ast.For, ast.AsyncFor], cursor: BasicBlock
    ) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        self.cfg.add_edge(cursor, header)
        # The For node itself is the header statement: it *uses* the
        # iterable and *defines* the loop target.
        header.statements.append(stmt)
        after = self.cfg.new_block()
        self.cfg.add_edge(header, after)
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(header, body_entry)
        self._loops.append(_LoopContext(header, after))
        body_exit = self.visit_body(stmt.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            self.cfg.add_edge(body_exit, header)
        if stmt.orelse:
            return self.visit_body(stmt.orelse, after)
        return after

    def _visit_try(
        self, stmt: ast.Try, cursor: BasicBlock
    ) -> Optional[BasicBlock]:
        body_entry = self.cfg.new_block()
        self.cfg.add_edge(cursor, body_entry)
        body_exit = self.visit_body(stmt.body, body_entry)
        join = self.cfg.new_block()
        exits: List[BasicBlock] = []
        if body_exit is not None:
            if stmt.orelse:
                else_exit = self.visit_body(stmt.orelse, body_exit)
                if else_exit is not None:
                    exits.append(else_exit)
            else:
                exits.append(body_exit)
        for handler in stmt.handlers:
            handler_entry = self.cfg.new_block()
            # Any prefix of the body may have run: the handler is
            # reachable both from before the try and from its end.
            self.cfg.add_edge(cursor, handler_entry)
            if body_exit is not None:
                self.cfg.add_edge(body_exit, handler_entry)
            if handler.name:
                # ``except E as name`` binds name; surface it as a def.
                bind = ast.Assign(
                    targets=[ast.Name(id=handler.name, ctx=ast.Store())],
                    value=ast.Constant(value=None),
                )
                ast.copy_location(bind, handler)
                ast.fix_missing_locations(bind)
                handler_entry.statements.append(bind)
            handler_exit = self.visit_body(handler.body, handler_entry)
            if handler_exit is not None:
                exits.append(handler_exit)
        if not exits:
            if stmt.finalbody:
                final_entry = self.cfg.new_block()
                self.cfg.add_edge(cursor, final_entry)
                return self.visit_body(stmt.finalbody, final_entry)
            return None
        for block in exits:
            self.cfg.add_edge(block, join)
        if stmt.finalbody:
            return self.visit_body(stmt.finalbody, join)
        return join


def build_cfg(node: Union[FunctionNode, ast.Lambda]) -> ControlFlowGraph:
    """The control-flow graph of one function's body."""
    if isinstance(node, ast.Lambda):
        stmt = ast.Return(value=node.body)
        ast.copy_location(stmt, node.body)
        ast.fix_missing_locations(stmt)
        return _Builder().build([stmt])
    return _Builder().build(node.body)
