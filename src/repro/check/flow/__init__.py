"""Dataflow-based determinism and concurrency analysis (``REPRO6xx``).

A small intra-procedural engine — per-function control-flow graphs
(:mod:`~repro.check.flow.cfg`), reaching definitions and labeled taint
(:mod:`~repro.check.flow.dataflow`) — carrying the rule pack in
:mod:`~repro.check.flow.rules`:

======== ======== ==========================================================
code     severity finding
======== ======== ==========================================================
REPRO600 error    set iteration order reaches a return value / trace
                  event / score computation without ``sorted()``
REPRO601 warning  wall-clock reading flows into simulator/placement logic
REPRO602 error    worker function mutates module-level state
REPRO603 error    RNG object shared across worker-submitted closures
REPRO604 warning  order-dependent float accumulation over an unordered
                  collection
REPRO610 error    ``tracer.emit`` site violates the event schema registry
REPRO611 error    metric registration violates the metric schema registry
REPRO612 error    ``open_span`` id not closed or handed off on every
                  control-flow path
======== ======== ==========================================================

Run it with ``repro-rod check --flow`` or ``repro-lint --flow`` (both
share the ``noqa`` baseline); the runtime twin of REPRO610/611 is
``Tracer(sink, validate=True)`` / ``repro.obs.validate_metric``, and
the end-to-end twin of the whole pack is the double-run determinism
harness in :mod:`repro.check.determinism`.
"""

from __future__ import annotations

from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .dataflow import Definition, FunctionFlow, iter_functions
from .rules import FLOW_CODES, analyze_module

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Definition",
    "FLOW_CODES",
    "FunctionFlow",
    "analyze_module",
    "build_cfg",
    "iter_functions",
]
