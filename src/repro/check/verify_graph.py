"""Query-graph verifier pass (``REPRO1xx``).

Checks the structural invariants every downstream layer assumes:
topological stream ordering (acyclicity), input connectivity, and the
consumer bookkeeping the load model walks.  All checks go through the
public :class:`~repro.graphs.query_graph.QueryGraph` API, so they hold
for deserialized and hand-built graphs alike.
"""

from __future__ import annotations

from typing import Iterator

from ..graphs.query_graph import QueryGraph
from .diagnostics import CheckReport, Diagnostic, Severity

__all__ = ["check_graph"]


def _loc(graph: QueryGraph, *parts: str) -> str:
    return "/".join((f"graph {graph.name!r}",) + parts)


def _iter_graph_diagnostics(graph: QueryGraph) -> Iterator[Diagnostic]:
    if graph.num_operators == 0:
        yield Diagnostic(
            code="REPRO101",
            severity=Severity.WARNING,
            message="graph defines no operators; every plan is empty",
            location=_loc(graph),
            fix_hint="add operators or drop the graph from the deployment",
        )
    if graph.num_operators > 0 and graph.num_inputs == 0:
        yield Diagnostic(
            code="REPRO104",
            severity=Severity.ERROR,
            message=(
                "graph has operators but no system input streams; "
                "the load model has dimension d=0"
            ),
            location=_loc(graph),
            fix_hint="declare input streams with add_input() before operators",
        )

    for input_name in graph.input_names:
        if not graph.consumers_of(input_name):
            yield Diagnostic(
                code="REPRO102",
                severity=Severity.WARNING,
                message=(
                    f"input stream {input_name!r} is never consumed; "
                    "it adds a load-free dimension and an unbounded "
                    "feasible-set direction"
                ),
                location=_loc(graph, f"stream {input_name!r}"),
                fix_hint="remove the input or attach an operator to it",
            )

    # Acyclicity / topological order: every operator may only consume
    # streams that exist before it (system inputs or earlier outputs).
    seen = set(graph.input_names)
    for op_name in graph.operator_names:
        for stream_name in graph.inputs_of(op_name):
            if stream_name not in seen:
                yield Diagnostic(
                    code="REPRO103",
                    severity=Severity.ERROR,
                    message=(
                        f"operator {op_name!r} consumes stream "
                        f"{stream_name!r} which is not defined upstream "
                        "(cycle or forward reference)"
                    ),
                    location=_loc(graph, f"operator {op_name!r}"),
                    fix_hint=(
                        "reorder operators topologically; streams must be "
                        "produced before they are consumed"
                    ),
                )
        seen.add(graph.output_of(op_name).name)

    # Consumer bookkeeping must mirror the per-operator input lists.
    for op_name in graph.operator_names:
        for stream_name in graph.inputs_of(op_name):
            try:
                consumers = graph.consumers_of(stream_name)
            except KeyError:
                yield Diagnostic(
                    code="REPRO106",
                    severity=Severity.ERROR,
                    message=(
                        f"operator {op_name!r} references unknown stream "
                        f"{stream_name!r}"
                    ),
                    location=_loc(graph, f"operator {op_name!r}"),
                    fix_hint="declare the stream before wiring the operator",
                )
                continue
            if op_name not in consumers:
                yield Diagnostic(
                    code="REPRO105",
                    severity=Severity.ERROR,
                    message=(
                        f"stream {stream_name!r} does not list its consumer "
                        f"{op_name!r} (internal bookkeeping mismatch)"
                    ),
                    location=_loc(graph, f"stream {stream_name!r}"),
                    fix_hint="rebuild the graph through the QueryGraph API",
                )


def check_graph(graph: QueryGraph) -> CheckReport:
    """Verify structural invariants of a query graph."""
    report = CheckReport()
    report.extend(_iter_graph_diagnostics(graph))
    return report
