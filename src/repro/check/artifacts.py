"""File-level checking: classify JSON artifacts, walk paths, run passes.

This is the engine behind ``repro-rod check --paths ...``.  It walks
files and directories, classifies each JSON document as a query-graph,
plan, or experiment-config artifact, cross-references plans and configs
against graph documents found in the same batch (by graph name), and
lints every ``.py`` file with :mod:`repro.check.lint`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.load_model import LoadModel, build_load_model
from ..graphs.serialize import graph_from_dict
from .diagnostics import CheckReport, Diagnostic, Severity
from .lint import lint_paths
from .verify_config import check_experiment_config
from .verify_graph import check_graph
from .verify_model import check_model
from .verify_plan import check_plan_document

__all__ = ["classify_document", "check_document", "check_paths"]

_SKIP_DIRS = {".git", "__pycache__", "build", "dist", ".venv", "node_modules"}


def classify_document(doc: Mapping[str, Any]) -> Optional[str]:
    """Best-effort artifact kind of a JSON document.

    Returns ``"graph"``, ``"plan"``, ``"experiment"`` or ``None`` for
    JSON files that are none of our artifacts (ignored, not errors).
    """
    kind = doc.get("kind")
    if kind in ("graph", "plan", "experiment"):
        return str(kind)
    if "inputs" in doc and "operators" in doc:
        return "graph"
    if "assignment" in doc:
        return "plan"
    if "strategy" in doc or "rate_region" in doc:
        return "experiment"
    return None


def _load_json(path: Path) -> Tuple[Optional[Mapping[str, Any]], CheckReport]:
    report = CheckReport()
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        report.add(Diagnostic(
            code="REPRO001",
            severity=Severity.ERROR,
            message=f"cannot read artifact: {exc}",
            location=str(path),
        ))
        return None, report
    if not isinstance(doc, Mapping):
        return None, report  # JSON arrays/scalars are not our artifacts
    return doc, report


def _check_graph_document(
    doc: Mapping[str, Any], location: str
) -> Tuple[Optional[LoadModel], CheckReport]:
    """Verify a graph document; returns its load model when buildable."""
    try:
        graph = graph_from_dict(dict(doc))
    except (KeyError, ValueError, TypeError) as exc:
        report = CheckReport()
        report.add(Diagnostic(
            code="REPRO107",
            severity=Severity.ERROR,
            message=f"graph document does not deserialize: {exc}",
            location=location,
            fix_hint="see repro.graphs.serialize for the document format",
        ))
        return None, report
    report = check_graph(graph)
    if not report.ok:
        return None, report
    try:
        model = build_load_model(graph)
    except (KeyError, ValueError, TypeError) as exc:
        report.add(Diagnostic(
            code="REPRO107",
            severity=Severity.ERROR,
            message=f"load model cannot be built from the graph: {exc}",
            location=location,
        ))
        return None, report
    report.merge(check_model(model))
    return model, report


def check_document(
    doc: Mapping[str, Any],
    location: str = "document",
    model: Optional[LoadModel] = None,
) -> CheckReport:
    """Verify one classified JSON document (graph, plan or experiment)."""
    kind = classify_document(doc)
    if kind == "graph":
        _, report = _check_graph_document(doc, location)
        return report
    if kind == "plan":
        return check_plan_document(doc, model=model, location=location)
    if kind == "experiment":
        return check_experiment_config(doc, model=model, location=location)
    report = CheckReport()
    report.add(Diagnostic(
        code="REPRO002",
        severity=Severity.INFO,
        message="JSON document is not a recognized artifact; skipped",
        location=location,
    ))
    return report


def _collect_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*")):
                if candidate.suffix in (".json", ".py") and not (
                    _SKIP_DIRS.intersection(candidate.parts)
                ):
                    files.append(candidate)
        elif path.exists():
            files.append(path)
        else:
            files.append(path)  # surfaces as REPRO001 below
    return files


def check_paths(
    paths: Iterable[object],
    lint: bool = True,
    flow: bool = False,
    jobs: int = 1,
) -> CheckReport:
    """Check every artifact under ``paths`` (files or directories).

    JSON artifacts are classified and verified; plans and experiment
    configs are cross-checked against graph documents discovered in the
    same batch, matched by graph name.  With ``lint=True`` every ``.py``
    file also runs through ``repro-lint``; ``flow=True`` adds the
    REPRO6xx dataflow rules, and ``jobs`` fans per-file analysis out
    over worker processes.
    """
    files = _collect_files(Path(str(p)) for p in paths)
    report = CheckReport()

    if lint:
        py_files = [p for p in files if p.suffix == ".py"]
        if py_files:
            report.merge(lint_paths(py_files, flow=flow, jobs=jobs))

    # First pass: parse JSON files, verify graphs, index models by name.
    models: Dict[str, LoadModel] = {}
    pending: List[Tuple[Path, Mapping[str, Any], str]] = []
    for path in files:
        if path.suffix == ".py":
            continue
        doc, parse_report = _load_json(path)
        report.merge(parse_report)
        if doc is None:
            continue
        kind = classify_document(doc)
        if kind == "graph":
            model, graph_report = _check_graph_document(doc, str(path))
            report.merge(graph_report)
            if model is not None:
                models[model.graph.name] = model
        elif kind in ("plan", "experiment"):
            pending.append((path, doc, kind))
        else:
            report.add(Diagnostic(
                code="REPRO002",
                severity=Severity.INFO,
                message="JSON document is not a recognized artifact; skipped",
                location=str(path),
            ))

    # Second pass: plans/configs see every graph found in the batch.
    for path, doc, kind in pending:
        model = models.get(str(doc.get("graph", "")))
        if kind == "plan":
            report.merge(
                check_plan_document(doc, model=model, location=str(path))
            )
        else:
            report.merge(
                check_experiment_config(doc, model=model, location=str(path))
            )
    return report
