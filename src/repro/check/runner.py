"""Verifier registry and dispatch.

A :class:`CheckRunner` maps artifact types to verifier passes and runs
every registered pass over whatever artifacts it is handed, aggregating
one :class:`~repro.check.diagnostics.CheckReport`.  The module-level
:func:`check_artifact` uses the default runner, which knows the core
artifact types (query graphs, load models, placements); embedders can
register extra passes for their own types without touching this package.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple, Type

from ..core.load_model import LoadModel
from ..core.plans import Placement
from ..graphs.query_graph import QueryGraph
from .diagnostics import CheckReport, Diagnostic, Severity
from .verify_graph import check_graph
from .verify_model import check_model
from .verify_plan import check_placement

__all__ = ["CheckRunner", "default_runner", "check_artifact"]

Verifier = Callable[[Any], CheckReport]


class CheckRunner:
    """Aggregates verifier passes keyed by artifact type."""

    def __init__(self) -> None:
        self._passes: List[Tuple[Type[Any], Verifier]] = []

    def register(self, artifact_type: Type[Any], verifier: Verifier) -> None:
        """Run ``verifier`` on every artifact of ``artifact_type``."""
        self._passes.append((artifact_type, verifier))

    def verifiers_for(self, artifact: Any) -> List[Verifier]:
        return [
            verifier
            for artifact_type, verifier in self._passes
            if isinstance(artifact, artifact_type)
        ]

    def run(self, *artifacts: Any) -> CheckReport:
        """Run all matching passes over the artifacts, in order."""
        report = CheckReport()
        for artifact in artifacts:
            verifiers = self.verifiers_for(artifact)
            if not verifiers:
                report.add(Diagnostic(
                    code="REPRO002",
                    severity=Severity.INFO,
                    message=(
                        f"no verifier registered for "
                        f"{type(artifact).__name__}; artifact skipped"
                    ),
                ))
                continue
            for verifier in verifiers:
                report.merge(verifier(artifact))
        return report


def default_runner() -> CheckRunner:
    """A runner pre-loaded with the core artifact verifiers.

    A :class:`Placement` is checked as a plan *and* has its model and
    graph checked; a :class:`LoadModel` also pulls in its graph.
    """
    runner = CheckRunner()
    runner.register(QueryGraph, check_graph)
    runner.register(LoadModel, lambda m: check_graph(m.graph))
    runner.register(LoadModel, check_model)
    runner.register(Placement, lambda p: check_graph(p.model.graph))
    runner.register(Placement, check_placement)
    return runner


_DEFAULT = default_runner()


def check_artifact(*artifacts: Any) -> CheckReport:
    """Check artifacts with the default verifier registry."""
    return _DEFAULT.run(*artifacts)
