"""Resilient Operator Distribution (ROD) for distributed stream processing.

A faithful, self-contained reproduction of

    Ying Xing, Jeong-Hyon Hwang, Uğur Çetintemel, Stan Zdonik.
    "Providing Resiliency to Load Variations in Distributed Stream
    Processing."  VLDB 2006.

Quickstart
----------
>>> from repro import build_load_model, rod_place
>>> from repro.graphs import random_tree_graph
>>> graph = random_tree_graph(seed=0)
>>> model = build_load_model(graph)
>>> plan = rod_place(model, capacities=[1.0, 1.0, 1.0, 1.0])
>>> 0.0 < plan.volume_ratio() <= 1.0
True

Package map
-----------
``repro.core``
    Load models, feasible-set geometry, the ROD algorithm, clustering.
``repro.graphs``
    Operators, query graphs, workload-graph generators.
``repro.placement``
    Baseline placers the paper compares against.
``repro.simulator``
    Discrete-event distributed stream-processing simulator (the Borealis
    stand-in).
``repro.workload``
    Bursty/self-similar rate traces and rate-point samplers.
``repro.experiments``
    One harness per table/figure of the paper's evaluation.
"""

from .core import (
    FeasibleSet,
    LoadModel,
    Placement,
    build_load_model,
    placement_from_mapping,
    rod_extend,
    rod_place,
)
from .deploy import Deployment
from .graphs import QueryGraph

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "FeasibleSet",
    "LoadModel",
    "Placement",
    "QueryGraph",
    "build_load_model",
    "placement_from_mapping",
    "rod_extend",
    "rod_place",
    "__version__",
]
