"""Text rendering of two-dimensional feasible sets (Figures 5 and 6).

For systems with two rate variables the feasible set is a polygon under
the node hyperplanes; this module draws it in the terminal so plans can
be eyeballed the way the paper's figures present them:

* ``#`` — feasible points,
* ``.`` — points inside the *ideal* feasible set that this plan wastes,
* (blank) — outside the ideal set (no plan can reach these),
* ``*`` — below the workload floor, when a lower bound is set.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .feasible_set import FeasibleSet

__all__ = ["render_feasible_set", "compare_feasible_sets"]


def render_feasible_set(
    feasible_set: FeasibleSet,
    width: int = 56,
    height: int = 20,
    title: Optional[str] = None,
) -> str:
    """ASCII plot of a 2-D feasible set against the ideal simplex."""
    if feasible_set.dimension != 2:
        raise ValueError(
            "only 2-D feasible sets can be rendered, got dimension "
            f"{feasible_set.dimension}"
        )
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    totals = np.asarray(feasible_set.column_totals, dtype=float)
    if np.any(totals <= 0):
        raise ValueError("both variables must carry load to plot the ideal")
    c_t = feasible_set.total_capacity
    # Axis ranges: the ideal intercepts, with a small margin.
    x_max = 1.05 * c_t / totals[0]
    y_max = 1.05 * c_t / totals[1]

    bound = feasible_set.lower_bound
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height, 0, -1):
        y = (row - 0.5) / height * y_max
        cells = []
        for col in range(width):
            x = (col + 0.5) / width * x_max
            point = np.array([x, y])
            in_ideal = totals @ point <= c_t
            if not in_ideal:
                cells.append(" ")
            elif bound is not None and np.any(point < bound):
                cells.append("*")
            elif np.all(
                feasible_set.node_coefficients @ point
                <= feasible_set.capacities
            ):
                cells.append("#")
            else:
                cells.append(".")
        lines.append("|" + "".join(cells))
    lines.append("+" + "-" * width + "> r1")
    ratio = feasible_set.volume_ratio(samples=2048)
    lines.append(
        f"  '#' feasible ({ratio:.0%} of ideal), '.' wasted, "
        f"r1 in [0, {x_max:.3g}], r2 in [0, {y_max:.3g}]"
    )
    return "\n".join(lines)


def compare_feasible_sets(
    first: FeasibleSet,
    second: FeasibleSet,
    labels: tuple = ("plan A", "plan B"),
    width: int = 56,
    height: int = 20,
) -> str:
    """Render two plans of the same system one above the other."""
    return "\n\n".join(
        render_feasible_set(fs, width=width, height=height, title=label)
        for fs, label in zip((first, second), labels)
    )
