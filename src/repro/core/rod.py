"""The Resilient Operator Distribution algorithm (Section 5, Figure 10).

ROD is a two-phase greedy placement:

1. **Operator ordering** — sort operators by the Euclidean norm of their
   load coefficient vectors, descending, so high-impact operators are
   placed while there is still freedom to balance them.
2. **Operator assignment** — for each operator, compute every node's
   *candidate* weight row (the weights the node would have after receiving
   the operator).  Nodes whose candidate hyperplane is still entirely on
   or above the ideal hyperplane (``w_ik <= 1`` for all ``k``) form
   *Class I*: choosing one cannot shrink the achievable feasible set, so
   any of them is safe (MMAD's regime).  If Class I is empty the feasible
   set must shrink, and ROD picks the node with the maximum candidate
   plane distance (MMPD's regime).

The lower-bound extension (Section 6.1) only changes the distance metric:
plane distances are measured from the normalized workload floor ``B̂``
instead of the origin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import geometry
from .load_model import LoadModel
from .plans import Placement

__all__ = ["RodStep", "rod_order", "rod_place", "rod_extend"]

_EPS = 1e-12
# Tolerance for the Class I test: candidate hyperplanes numerically on the
# ideal hyperplane still count as Class I.
_CLASS_ONE_TOL = 1e-9

CLASS_ONE_POLICIES = ("plane", "first", "random", "connections")


@dataclass(frozen=True)
class RodStep:
    """One assignment decision, for inspection and tests."""

    operator: str
    node: int
    class_one: Tuple[int, ...]
    chosen_from_class_one: bool
    candidate_distances: Tuple[float, ...]


def rod_order(model: LoadModel) -> List[int]:
    """Phase 1: operator indices sorted by ``||l^o_j||_2`` descending.

    Ties broken by model order so the result is deterministic.
    """
    norms = model.operator_norms()
    return sorted(range(model.num_operators), key=lambda j: (-norms[j], j))


def _candidate_weights(
    node_coeffs: np.ndarray,
    op_row: np.ndarray,
    totals: np.ndarray,
    capacity_share: np.ndarray,
    safe_totals: Optional[np.ndarray] = None,
    dead_columns: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Weight matrix every node would have after receiving the operator.

    Row ``i`` is node ``i``'s weights with the operator added to *it*
    (other nodes unchanged do not matter for the decision).
    ``safe_totals`` / ``dead_columns`` let the assignment loop hoist the
    totals guards instead of recomputing them per operator.
    """
    if safe_totals is None:
        safe_totals = np.where(totals > _EPS, totals, 1.0)
    if dead_columns is None:
        dead_columns = totals <= _EPS
    share = (node_coeffs + op_row) / safe_totals
    share[:, dead_columns] = 0.0
    return share / capacity_share[:, None]


def _plane_distance_rows(
    weights: np.ndarray, origin: Optional[np.ndarray]
) -> np.ndarray:
    """Candidate plane distance per node (from origin or from ``B̂``)."""
    if origin is None:
        return geometry.plane_distances(weights)
    return geometry.plane_distance_from_point(weights, origin)


def rod_place(
    model: LoadModel,
    capacities: Sequence[float],
    lower_bound: Optional[Sequence[float]] = None,
    class_one_policy: str = "plane",
    seed: Optional[int] = None,
    order: Optional[Sequence[int]] = None,
    steps: Optional[List[RodStep]] = None,
) -> Placement:
    """Run ROD and return the resulting :class:`Placement`.

    Parameters
    ----------
    model:
        Linear(ized) load model to place.
    capacities:
        Per-node CPU capacities ``C``.
    lower_bound:
        Optional workload floor ``B`` in variable space (Section 6.1).
    class_one_policy:
        How to pick among Class I nodes, all of which are feasible-set
        neutral: ``"plane"`` (max candidate plane distance — the default,
        biasing toward balance), ``"first"``, ``"random"``, or
        ``"connections"`` (fewest new inter-node arcs, the communication
        -aware choice mentioned in Section 5.2).
    seed:
        Random seed for the ``"random"`` policy.
    order:
        Optional explicit assignment order (operator indices); used by the
        ordering ablation.  Defaults to :func:`rod_order`.
    steps:
        Optional list that receives a :class:`RodStep` per assignment.
    """
    if class_one_policy not in CLASS_ONE_POLICIES:
        raise ValueError(
            f"unknown class-I policy {class_one_policy!r}; "
            f"expected one of {CLASS_ONE_POLICIES}"
        )
    capacities = geometry.validate_capacities(capacities)
    n = capacities.shape[0]
    d = model.num_variables
    totals = model.column_totals()
    capacity_share = capacities / capacities.sum()

    b_hat: Optional[np.ndarray] = None
    if lower_bound is not None:
        b_hat = geometry.normalize_lower_bound(
            lower_bound, totals, float(capacities.sum())
        )

    if order is None:
        order = rod_order(model)
    else:
        order = list(order)
        if sorted(order) != list(range(model.num_operators)):
            raise ValueError(
                "order must be a permutation of all operator indices"
            )

    rng = random.Random(seed)
    graph = model.graph
    node_coeffs = np.zeros((n, d))
    assignment = [-1] * model.num_operators
    safe_totals = np.where(totals > _EPS, totals, 1.0)
    dead_columns = totals <= _EPS

    def new_cross_arcs(op_index: int, node: int) -> int:
        """Inter-node arcs created by putting operator ``op_index`` on node."""
        name = model.operator_names[op_index]
        count = 0
        for neighbor in (
            graph.upstream_operators(name) + graph.downstream_operators(name)
        ):
            other = assignment[model.operator_index(neighbor)]
            if other >= 0 and other != node:
                count += 1
        return count

    for j in order:
        op_row = model.coefficients[j]
        candidates = _candidate_weights(
            node_coeffs, op_row, totals, capacity_share,
            safe_totals, dead_columns,
        )
        class_one_idx = np.flatnonzero(
            (candidates <= 1.0 + _CLASS_ONE_TOL).all(axis=1)
        )
        distances = _plane_distance_rows(candidates, b_hat)

        if class_one_idx.size:
            chosen_from_one = True
            if class_one_policy == "first":
                node = int(class_one_idx[0])
            elif class_one_policy == "random":
                node = int(rng.choice(class_one_idx.tolist()))
            elif class_one_policy == "connections":
                node = min(
                    class_one_idx.tolist(),
                    key=lambda i: (new_cross_arcs(j, i), -distances[i], i),
                )
            else:  # "plane": max distance, ties to the lowest node index
                node = int(class_one_idx[np.argmax(distances[class_one_idx])])
        else:
            chosen_from_one = False
            node = int(np.argmax(distances))

        assignment[j] = node
        node_coeffs[node] += op_row
        if steps is not None:
            steps.append(
                RodStep(
                    operator=model.operator_names[j],
                    node=node,
                    class_one=tuple(int(i) for i in class_one_idx),
                    chosen_from_class_one=chosen_from_one,
                    candidate_distances=tuple(float(x) for x in distances),
                )
            )

    return Placement(
        model=model,
        capacities=capacities,
        assignment=tuple(assignment),
        lower_bound=None if b_hat is None else np.asarray(lower_bound, float),
    )


def rod_extend(
    placement: Placement,
    new_model: LoadModel,
    lower_bound: Optional[Sequence[float]] = None,
    class_one_policy: str = "plane",
    seed: Optional[int] = None,
) -> Placement:
    """Place newly added operators without moving existing ones.

    Long-running deployments grow: new queries attach operators to a
    system whose current operators cannot be migrated (the paper's core
    premise).  ROD's greedy step is naturally incremental — existing
    assignments simply pre-load the node coefficient accumulators, and
    only the new operators are ordered and assigned.

    ``new_model`` must contain every operator of ``placement.model``
    (same names); operators unique to ``new_model`` are the ones placed.
    Variables may grow too (new input streams or cut streams).
    """
    if class_one_policy not in CLASS_ONE_POLICIES:
        raise ValueError(
            f"unknown class-I policy {class_one_policy!r}; "
            f"expected one of {CLASS_ONE_POLICIES}"
        )
    old_model = placement.model
    old_names = set(old_model.operator_names)
    missing = old_names - set(new_model.operator_names)
    if missing:
        raise ValueError(
            f"new model dropped operators {sorted(missing)}; rod_extend "
            "only supports additive growth"
        )
    capacities = placement.capacities
    n = capacities.shape[0]
    totals = new_model.column_totals()
    capacity_share = capacities / capacities.sum()

    b_hat: Optional[np.ndarray] = None
    if lower_bound is not None:
        b_hat = geometry.normalize_lower_bound(
            lower_bound, totals, float(capacities.sum())
        )

    # Pre-load node coefficients with the pinned operators.
    node_coeffs = np.zeros((n, new_model.num_variables))
    assignment = [-1] * new_model.num_operators
    for j, name in enumerate(new_model.operator_names):
        if name in old_names:
            node = placement.node_of(name)
            assignment[j] = node
            node_coeffs[node] += new_model.coefficients[j]

    fresh = [
        j
        for j, name in enumerate(new_model.operator_names)
        if name not in old_names
    ]
    norms = new_model.operator_norms()
    fresh.sort(key=lambda j: (-norms[j], j))

    rng = random.Random(seed)
    graph = new_model.graph

    def new_cross_arcs(op_index: int, node: int) -> int:
        name = new_model.operator_names[op_index]
        count = 0
        for neighbor in (
            graph.upstream_operators(name) + graph.downstream_operators(name)
        ):
            other = assignment[new_model.operator_index(neighbor)]
            if other >= 0 and other != node:
                count += 1
        return count

    for j in fresh:
        op_row = new_model.coefficients[j]
        candidates = _candidate_weights(
            node_coeffs, op_row, totals, capacity_share
        )
        class_one_idx = np.flatnonzero(
            (candidates <= 1.0 + _CLASS_ONE_TOL).all(axis=1)
        )
        distances = _plane_distance_rows(candidates, b_hat)
        if class_one_idx.size:
            if class_one_policy == "first":
                node = int(class_one_idx[0])
            elif class_one_policy == "random":
                node = int(rng.choice(class_one_idx.tolist()))
            elif class_one_policy == "connections":
                node = min(
                    class_one_idx.tolist(),
                    key=lambda i: (new_cross_arcs(j, i), -distances[i], i),
                )
            else:  # "plane": max distance, ties to the lowest node index
                node = int(class_one_idx[np.argmax(distances[class_one_idx])])
        else:
            node = int(np.argmax(distances))
        assignment[j] = node
        node_coeffs[node] += op_row

    return Placement(
        model=new_model,
        capacities=capacities,
        assignment=tuple(assignment),
        lower_bound=(
            None if b_hat is None else np.asarray(lower_bound, float)
        ),
    )
