"""Hyperplane geometry of node load constraints (Sections 3 and 4).

Given a node load coefficient matrix ``L^n`` (n x d) and a CPU capacity
vector ``C``, node ``i``'s constraint is the halfspace ``L^n_i . R <= C_i``
bounded by the *node hyperplane* ``L^n_i . R = C_i``.  The feasible set is
the intersection of these halfspaces with the non-negative orthant.

Everything the ROD heuristics need is expressed in the *normalized* space
``x_k = l_k r_k / C_T`` where:

* the ideal hyperplane (Theorem 1) is ``sum_k x_k = 1``;
* node hyperplanes are ``W_i . x = 1`` with the weight matrix
  ``w_ik = (l^n_ik / l_k) / (C_i / C_T)``;
* MMAD's axis distance of node ``i`` on axis ``k`` is ``1 / w_ik``;
* MMPD's plane distance of node ``i`` is ``1 / ||W_i||_2``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "validate_capacities",
    "weight_matrix",
    "axis_distances",
    "plane_distances",
    "min_plane_distance",
    "plane_distance_from_point",
    "ideal_volume",
    "ideal_plane_distance",
    "normalize_lower_bound",
    "hypersphere_volume_fraction",
]

_EPS = 1e-12


def validate_capacities(capacities: Sequence[float]) -> np.ndarray:
    """Check and convert a capacity vector ``C`` (positive, finite)."""
    c = np.asarray(capacities, dtype=float)
    if c.ndim != 1 or c.size == 0:
        raise ValueError(f"capacity vector must be 1-D and non-empty, got {c!r}")
    if not np.all(np.isfinite(c)) or np.any(c <= 0):
        raise ValueError(f"capacities must be finite and > 0, got {c!r}")
    return c


def weight_matrix(
    node_coefficients: np.ndarray,
    capacities: Sequence[float],
    column_totals: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The normalized weight matrix ``W = {w_ik}``.

    ``w_ik = (l^n_ik / l_k) / (C_i / C_T)`` — the share of stream ``k``'s
    total load placed on node ``i``, relative to the node's share of total
    capacity.  The ideal plan of Theorem 1 has ``w_ik = 1`` everywhere.

    A variable with zero total load coefficient (no operator consumes it)
    contributes weight 0 on every node.
    """
    ln = np.asarray(node_coefficients, dtype=float)
    if ln.ndim != 2:
        raise ValueError(f"L^n must be 2-D, got shape {ln.shape}")
    c = validate_capacities(capacities)
    if c.shape[0] != ln.shape[0]:
        raise ValueError(
            f"L^n has {ln.shape[0]} rows but C has {c.shape[0]} entries"
        )
    totals = (
        ln.sum(axis=0) if column_totals is None
        else np.asarray(column_totals, dtype=float)
    )
    if totals.shape != (ln.shape[1],):
        raise ValueError(
            f"column totals shape {totals.shape} does not match d={ln.shape[1]}"
        )
    safe_totals = np.where(totals > _EPS, totals, 1.0)
    share = ln / safe_totals
    share[:, totals <= _EPS] = 0.0
    capacity_share = c / c.sum()
    return share / capacity_share[:, None]


def axis_distances(weights: np.ndarray) -> np.ndarray:
    """Per-node, per-axis distances ``1 / w_ik`` (``inf`` where weight 0).

    The ideal hyperplane has axis distance 1 on every axis; MMAD maximizes
    the minimum of these per axis.
    """
    w = np.asarray(weights, dtype=float)
    with np.errstate(divide="ignore"):
        return np.where(w > _EPS, 1.0 / np.maximum(w, _EPS), np.inf)


def plane_distances(weights: np.ndarray) -> np.ndarray:
    """Per-node plane distances ``1 / ||W_i||_2`` (``inf`` for empty rows)."""
    w = np.asarray(weights, dtype=float)
    norms = np.linalg.norm(w, axis=1)
    with np.errstate(divide="ignore"):
        return np.where(norms > _EPS, 1.0 / np.maximum(norms, _EPS), np.inf)


def min_plane_distance(weights: np.ndarray) -> float:
    """``r = min_i 1 / ||W_i||`` — the MMPD objective (Section 4.2)."""
    return float(np.min(plane_distances(weights)))


def plane_distance_from_point(
    weights: np.ndarray, point: Sequence[float]
) -> np.ndarray:
    """Distance from ``point`` to each node hyperplane ``W_i . x = 1``.

    Used by the lower-bound extension (Section 6.1): the radius of the
    largest hypersphere centered at the normalized lower bound ``B̂`` is
    ``min_i (1 - W_i . B̂) / ||W_i||``.  Distances are signed: negative
    means the point is already beyond the hyperplane (node overloaded at
    the lower bound itself).
    """
    w = np.asarray(weights, dtype=float)
    p = np.asarray(point, dtype=float)
    if p.shape != (w.shape[1],):
        raise ValueError(
            f"point shape {p.shape} does not match d={w.shape[1]}"
        )
    norms = np.linalg.norm(w, axis=1)
    slack = 1.0 - w @ p
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(norms > _EPS, slack / np.maximum(norms, _EPS), np.inf)


def ideal_volume(
    capacities: Sequence[float], column_totals: Sequence[float]
) -> float:
    """Volume of the ideal feasible set ``C_T^d / (d! * prod_k l_k)``.

    Infinite if any variable carries no load (the simplex is unbounded in
    that direction).
    """
    c = validate_capacities(capacities)
    totals = np.asarray(column_totals, dtype=float)
    if np.any(totals < 0):
        raise ValueError(f"column totals must be >= 0, got {totals!r}")
    if np.any(totals <= _EPS):
        return math.inf
    d = totals.shape[0]
    c_t = float(c.sum())
    log_vol = (
        d * math.log(c_t)
        - math.lgamma(d + 1)
        - float(np.sum(np.log(totals)))
    )
    return math.exp(log_vol)


def ideal_plane_distance(dimension: int) -> float:
    """Distance from the origin to the ideal hyperplane ``sum x_k = 1``."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    return 1.0 / math.sqrt(dimension)


def normalize_lower_bound(
    lower_bound: Sequence[float],
    column_totals: Sequence[float],
    total_capacity: float,
) -> np.ndarray:
    """Map a physical rate lower bound ``B`` to ``B̂ = (b_k l_k / C_T)_k``."""
    b = np.asarray(lower_bound, dtype=float)
    totals = np.asarray(column_totals, dtype=float)
    if b.shape != totals.shape:
        raise ValueError(
            f"lower bound shape {b.shape} does not match totals {totals.shape}"
        )
    if np.any(b < 0):
        raise ValueError(f"lower bound must be >= 0, got {b!r}")
    if total_capacity <= 0:
        raise ValueError(f"total capacity must be > 0, got {total_capacity}")
    return b * totals / total_capacity


def hypersphere_volume_fraction(radius_ratio: float, dimension: int) -> float:
    """Lower bound on feasible-set / ideal-set volume from a plane radius.

    If all node hyperplanes are at plane distance >= ``r``, the feasible set
    contains the positive-orthant part of the radius-``r`` hypersphere.
    With ``rho = r / r*`` (``r*`` the ideal hyperplane's distance) this
    fraction scales as a constant times ``rho^d`` — the lower-bound curve
    of Figure 9.  The constant is the ratio of the orthant ball volume
    ``(1/2^d) * V_ball(d, r)`` to the unit-simplex volume ``1/d!``.
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    if radius_ratio < 0:
        raise ValueError("radius ratio must be >= 0")
    r = radius_ratio * ideal_plane_distance(dimension)
    d = dimension
    log_ball = (d / 2.0) * math.log(math.pi) - math.lgamma(d / 2.0 + 1.0)
    if r <= 0:
        return 0.0
    log_fraction = (
        log_ball + d * math.log(r) - d * math.log(2.0) + math.lgamma(d + 1)
    )
    return min(1.0, math.exp(log_fraction))
