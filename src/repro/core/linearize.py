"""Linearization of non-linear query graphs (Section 6.2).

The linear load model requires every operator's load to be a linear
function of a fixed set of rate variables.  Two operator classes break
this when the variables are only the system input rates:

* operators with *unknown or varying selectivity* — their own load is
  still linear in their input rate, but everything downstream is not;
* *window joins* — their load is ``c * w * r_u * r_v``, a product of two
  rates.

The paper's fix is to *cut* the offending output streams: each cut stream's
rate becomes an additional variable, downstream loads become linear in it,
and a join's own load becomes ``(c/s) * r_out`` — linear in its output-rate
variable.  This module decides where to cut and reports the result; the
actual coefficient propagation lives in :mod:`repro.core.load_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..graphs.operators import VariableSelectivityOp, WindowJoin
from ..graphs.query_graph import QueryGraph

__all__ = ["find_cut_streams", "LinearizationReport", "linearization_report"]


def find_cut_streams(graph: QueryGraph) -> Tuple[str, ...]:
    """Streams whose rates must become auxiliary variables.

    A stream is cut iff its producer's output rate is not a constant linear
    combination of that producer's input rates — i.e. the producer is a
    window join or has variable selectivity.  This is the minimal cut: the
    paper notes that fewer auxiliary variables are better because each new
    variable is one more dimension whose weight must be balanced.
    """
    cuts = []
    for op in graph.operators():
        if not op.is_linear:
            cuts.append(graph.output_of(op.name).name)
    return tuple(cuts)


@dataclass(frozen=True)
class LinearizationReport:
    """Summary of how a graph was linearized.

    Attributes
    ----------
    input_streams:
        The original system input streams (the first variables).
    cut_streams:
        Auxiliary variables introduced, in topological order.
    cut_producers:
        The non-linear operators whose outputs were cut, aligned with
        ``cut_streams``.
    """

    input_streams: Tuple[str, ...]
    cut_streams: Tuple[str, ...]
    cut_producers: Tuple[str, ...]

    @property
    def num_variables(self) -> int:
        """Total dimensionality of the linearized rate space."""
        return len(self.input_streams) + len(self.cut_streams)

    @property
    def is_trivial(self) -> bool:
        """True when the graph was already linear (no cuts needed)."""
        return not self.cut_streams


def linearization_report(graph: QueryGraph) -> LinearizationReport:
    """Describe the linear-cut decomposition of ``graph`` (Figure 13)."""
    cut_streams = find_cut_streams(graph)
    producers = tuple(graph.stream(s).producer for s in cut_streams)
    for op_name in producers:
        op = graph.operator(op_name)
        if isinstance(op, WindowJoin) and op.selectivity <= 0:
            raise ValueError(
                f"{op_name}: join selectivity must be positive to express "
                "its load as (c/s) * output rate"
            )
        if not isinstance(op, (WindowJoin, VariableSelectivityOp)):
            # Any future non-linear operator must define how its load maps
            # onto the cut variable; fail loudly rather than mis-model it.
            raise TypeError(
                f"{op_name}: do not know how to linearize "
                f"{type(op).__name__}"
            )
    return LinearizationReport(
        input_streams=graph.input_names,
        cut_streams=cut_streams,
        cut_producers=producers,
    )
