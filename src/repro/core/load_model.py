"""The linear load model (Section 2.2).

Builds, from a query graph, the operator load coefficient matrix
``L^o = {l^o_jk}_{m x d}`` such that ``load(o_j) = sum_k l^o_jk * x_k``
where ``x`` ranges over the model's *variables*: the system input stream
rates plus, for non-linear graphs, one auxiliary variable per cut stream
(Section 6.2).

The model also keeps the rate of every stream as a linear function of the
variables, which the simulator and the workload samplers use to map
physical input-rate points into variable space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..graphs.operators import (
    LinearOperator,
    VariableSelectivityOp,
    WindowJoin,
)
from ..graphs.partition import (
    DEFAULT_MERGE_COST,
    DEFAULT_ROUTE_COST,
    partition_operator,
    unpartition_operator,
)
from ..graphs.query_graph import QueryGraph
from .linearize import LinearizationReport, linearization_report

__all__ = [
    "LoadModel",
    "build_load_model",
    "partition_load_model",
    "merge_load_model",
]


@dataclass(frozen=True)
class LoadModel:
    """Immutable linear load model of a query graph.

    Attributes
    ----------
    graph:
        The query graph this model was derived from.
    variables:
        Names of the rate variables, system inputs first, then cut streams
        in topological order.  ``d`` is ``len(variables)``.
    operator_names:
        Operator names in topological order; row ``j`` of ``coefficients``
        belongs to ``operator_names[j]``.
    coefficients:
        ``L^o``, shape ``(m, d)``, ``l^o_jk`` = CPU seconds per unit time
        contributed to operator ``j`` by one tuple/second on variable ``k``.
    stream_coefficients:
        Rate of every *linear* stream as a ``d``-vector over the variables.
        Cut streams map to their own unit vector.
    linearization:
        How the graph was cut (trivial for linear graphs).
    """

    graph: QueryGraph
    variables: Tuple[str, ...]
    operator_names: Tuple[str, ...]
    coefficients: np.ndarray
    stream_coefficients: Mapping[str, np.ndarray]
    linearization: LinearizationReport

    # ----------------------------------------------------------- dimensions

    @property
    def num_variables(self) -> int:
        """``d`` — dimensionality of the (possibly extended) rate space."""
        return len(self.variables)

    @property
    def num_operators(self) -> int:
        """``m`` — number of operators."""
        return len(self.operator_names)

    @property
    def num_inputs(self) -> int:
        """Number of *physical* system input streams."""
        return self.graph.num_inputs

    @property
    def is_linearized(self) -> bool:
        """True if auxiliary cut variables were introduced."""
        return not self.linearization.is_trivial

    # ------------------------------------------------------------- indexing

    def variable_index(self, name: str) -> int:
        try:
            return self.variables.index(name)
        except ValueError:
            raise KeyError(f"unknown variable: {name!r}") from None

    def operator_index(self, name: str) -> int:
        try:
            return self.operator_names.index(name)
        except ValueError:
            raise KeyError(f"unknown operator: {name!r}") from None

    def operator_load_vector(self, name: str) -> np.ndarray:
        """Row ``l^o_j`` of ``L^o`` for the named operator."""
        return self.coefficients[self.operator_index(name)].copy()

    # ------------------------------------------------------------ aggregate

    def column_totals(self) -> np.ndarray:
        """``l_k = sum_j l^o_jk`` — total load coefficient per variable.

        These are the denominators of the weight matrix and the slopes of
        the ideal hyperplane ``sum_k l_k r_k = C_T`` (Theorem 1).
        """
        return self.coefficients.sum(axis=0)

    def operator_norms(self) -> np.ndarray:
        """``||l^o_j||_2`` per operator — ROD's phase-1 sort key."""
        return np.linalg.norm(self.coefficients, axis=1)

    # ------------------------------------------------------------ evaluation

    def loads(self, rates: Sequence[float]) -> np.ndarray:
        """Per-operator load at a point in *variable* space."""
        rates = np.asarray(rates, dtype=float)
        if rates.shape != (self.num_variables,):
            raise ValueError(
                f"expected {self.num_variables} variable rates, "
                f"got shape {rates.shape}"
            )
        return self.coefficients @ rates

    def variable_point(self, input_rates: Sequence[float]) -> np.ndarray:
        """Map physical input rates to a point in variable space.

        For linear graphs this is the identity.  For linearized graphs the
        auxiliary variables take the *true* (non-linear) steady-state rates
        of their cut streams, computed by propagating ``input_rates``
        through the original graph.
        """
        if len(input_rates) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input rates, got {len(input_rates)}"
            )
        if not self.is_linearized:
            return np.asarray(input_rates, dtype=float)
        true_rates = self.graph.stream_rates(input_rates)
        return np.array([
            true_rates[name] if name in true_rates else 0.0
            for name in self.variables
        ])

    def stream_rate_vector(self, stream_name: str) -> np.ndarray:
        """Rate of a stream as a linear function (d-vector) of variables."""
        try:
            return np.array(self.stream_coefficients[stream_name], dtype=float)
        except KeyError:
            raise KeyError(f"unknown stream: {stream_name!r}") from None


def build_load_model(graph: QueryGraph) -> LoadModel:
    """Derive the linear load model of ``graph``, cutting where needed.

    For a linear graph the variables are exactly the system input streams
    and every ``l^o_jk`` is a product of the operator's per-port costs and
    the accumulated upstream selectivities (Example 1).  Non-linear
    operators trigger the Section 6.2 transformation automatically.
    """
    report = linearization_report(graph)
    variables = tuple(report.input_streams) + tuple(report.cut_streams)
    d = len(variables)
    var_index = {name: k for k, name in enumerate(variables)}

    def unit(name: str) -> np.ndarray:
        v = np.zeros(d)
        v[var_index[name]] = 1.0
        return v

    # Rate of each stream as a d-vector over the variables.
    stream_coeffs: Dict[str, np.ndarray] = {
        name: unit(name) for name in report.input_streams
    }

    rows = []
    for op in graph.operators():
        in_coeffs = [stream_coeffs[s] for s in graph.inputs_of(op.name)]
        out_stream = graph.output_of(op.name).name
        if op.is_linear:
            row = np.zeros(d)
            for port, coeff in enumerate(in_coeffs):
                row += op.cost_of_port(port) * coeff
            stream_coeffs[out_stream] = sum(
                s * coeff
                for s, coeff in zip(op.selectivities, in_coeffs)
            )
        elif isinstance(op, VariableSelectivityOp):
            # Load is still linear in the input rate; only the output is cut.
            row = op.cost * in_coeffs[0]
            stream_coeffs[out_stream] = unit(out_stream)
        elif isinstance(op, WindowJoin):
            # load = (c/s) * r_out, linear in the cut output variable.
            row = op.load_per_output_tuple * unit(out_stream)
            stream_coeffs[out_stream] = unit(out_stream)
        else:  # pragma: no cover - linearization_report already rejects this
            raise TypeError(f"cannot linearize {type(op).__name__}")
        rows.append(row)

    coefficients = (
        np.vstack(rows) if rows else np.zeros((0, d))
    )
    return LoadModel(
        graph=graph,
        variables=variables,
        operator_names=graph.operator_names,
        coefficients=coefficients,
        stream_coefficients=stream_coeffs,
        linearization=report,
    )


def partition_load_model(
    model: LoadModel,
    operator_name: str,
    ways: int,
    route_cost: float = DEFAULT_ROUTE_COST,
    merge_cost: float = DEFAULT_MERGE_COST,
    fractions: Optional[Sequence[float]] = None,
) -> LoadModel:
    """Load-model analogue of :func:`~repro.graphs.partition.partition_operator`.

    Splits ``operator_name`` ``ways`` ways and extends ``L^o`` *in
    place* of a full rebuild: the target's single row is replaced by
    ``2 * ways + 1`` surgically derived rows (routes, instances, merge)
    while every other row, the variable set and the linearization report
    carry over untouched.  This is what lets an elastic placer extend
    the model mid-search without re-linearizing the graph.
    """
    graph = partition_operator(
        model.graph, operator_name, ways,
        route_cost=route_cost, merge_cost=merge_cost, fractions=fractions,
    )
    group = graph.partition_groups[operator_name]
    target = model.graph.operator(operator_name)
    if not isinstance(target, LinearOperator):  # pragma: no cover
        raise TypeError(f"{operator_name}: not a linear operator")
    (target_input,) = model.graph.inputs_of(operator_name)
    s_in = np.asarray(model.stream_coefficients[target_input], dtype=float)
    d = model.num_variables

    new_streams: Dict[str, np.ndarray] = dict(model.stream_coefficients)
    rows: List[np.ndarray] = []
    for name in model.operator_names:
        if name != operator_name:
            rows.append(model.coefficients[model.operator_index(name)])
            continue
        # Mirrors build_load_model's arithmetic for the new operators;
        # the merged output stream keeps the old name and its exact
        # coefficient vector, so downstream rows are reused unchanged.
        part_outs: List[np.ndarray] = []
        for part, fraction in enumerate(group.fractions):
            route_out = fraction * s_in
            route_row = np.zeros(d)
            route_row += route_cost * s_in
            rows.append(route_row)
            new_streams[f"{operator_name}.route{part}.out"] = route_out
            part_row = np.zeros(d)
            part_row += target.cost_of_port(0) * route_out
            rows.append(part_row)
            part_out = target.selectivities[0] * route_out
            new_streams[f"{operator_name}.part{part}.out"] = part_out
            part_outs.append(part_out)
        merge_row = np.zeros(d)
        for part_out in part_outs:
            merge_row += merge_cost * part_out
        rows.append(merge_row)
    coefficients = np.vstack(rows) if rows else np.zeros((0, d))
    return LoadModel(
        graph=graph,
        variables=model.variables,
        operator_names=graph.operator_names,
        coefficients=coefficients,
        stream_coefficients=new_streams,
        linearization=model.linearization,
    )


def merge_load_model(model: LoadModel, operator_name: str) -> LoadModel:
    """Inverse of :func:`partition_load_model`: collapse a group's rows.

    The group's ``2 * ways + 1`` rows are replaced by the reconstructed
    original operator's single row; every other row and the variable set
    carry over untouched.
    """
    group = model.graph.partition_groups[operator_name]
    graph = unpartition_operator(model.graph, operator_name)
    target = graph.operator(operator_name)
    if not isinstance(target, LinearOperator):  # pragma: no cover
        raise TypeError(f"{operator_name}: not a linear operator")
    (target_input,) = graph.inputs_of(operator_name)
    s_in = np.asarray(model.stream_coefficients[target_input], dtype=float)
    d = model.num_variables

    new_streams: Dict[str, np.ndarray] = dict(model.stream_coefficients)
    for member in group.derived:
        new_streams.pop(f"{member}.out", None)
    removed = set(group.derived)
    rows: List[np.ndarray] = []
    restored = False
    for name in model.operator_names:
        if name in removed:
            if not restored:
                row = np.zeros(d)
                row += target.cost_of_port(0) * s_in
                rows.append(row)
                restored = True
            continue
        rows.append(model.coefficients[model.operator_index(name)])
    coefficients = np.vstack(rows) if rows else np.zeros((0, d))
    return LoadModel(
        graph=graph,
        variables=model.variables,
        operator_names=graph.operator_names,
        coefficients=coefficients,
        stream_coefficients=new_streams,
        linearization=model.linearization,
    )
