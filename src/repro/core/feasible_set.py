"""Feasible sets of operator distribution plans (Section 2.3).

A :class:`FeasibleSet` packages a node load coefficient matrix ``L^n``, a
capacity vector ``C`` and (optionally) a workload lower bound ``B`` and
answers every question the paper asks of it: point feasibility, node
utilizations, the normalized weight matrix and its axis/plane distances,
and the feasible-set volume both as a QMC ratio to the ideal set and —
for small dimensions — exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from . import geometry
from .volume import polytope, qmc

__all__ = ["FeasibleSet"]


@dataclass(frozen=True)
class FeasibleSet:
    """The set ``{R in D : L^n R <= C}`` with ``D = {R >= B}``.

    Attributes
    ----------
    node_coefficients:
        ``L^n``, shape ``(n, d)``.
    capacities:
        ``C``, shape ``(n,)``.
    column_totals:
        ``l_k`` — total load coefficient per variable across *all*
        operators.  Defaults to the column sums of ``L^n``, which is exact
        whenever the plan places every operator.
    lower_bound:
        Physical rate floor ``B`` (Section 6.1); defaults to the origin.
    """

    node_coefficients: np.ndarray
    capacities: np.ndarray
    column_totals: np.ndarray = field(default=None)  # type: ignore[assignment]
    lower_bound: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        ln = np.asarray(self.node_coefficients, dtype=float)
        if ln.ndim != 2:
            raise ValueError(f"L^n must be 2-D, got shape {ln.shape}")
        if np.any(ln < 0):
            raise ValueError("load coefficients must be >= 0")
        c = geometry.validate_capacities(self.capacities)
        if c.shape[0] != ln.shape[0]:
            raise ValueError(
                f"L^n has {ln.shape[0]} rows but C has {c.shape[0]} entries"
            )
        totals = (
            ln.sum(axis=0)
            if self.column_totals is None
            else np.asarray(self.column_totals, dtype=float)
        )
        if totals.shape != (ln.shape[1],):
            raise ValueError(
                f"column totals shape {totals.shape} "
                f"does not match d={ln.shape[1]}"
            )
        bound = self.lower_bound
        if bound is not None:
            bound = np.asarray(bound, dtype=float)
            if bound.shape != (ln.shape[1],):
                raise ValueError(
                    f"lower bound shape {bound.shape} "
                    f"does not match d={ln.shape[1]}"
                )
            if np.any(bound < 0):
                raise ValueError("lower bound must be >= 0")
        object.__setattr__(self, "node_coefficients", ln)
        object.__setattr__(self, "capacities", c)
        object.__setattr__(self, "column_totals", totals)
        object.__setattr__(self, "lower_bound", bound)

    # ------------------------------------------------------------ dimensions

    @property
    def num_nodes(self) -> int:
        return self.node_coefficients.shape[0]

    @property
    def dimension(self) -> int:
        return self.node_coefficients.shape[1]

    @property
    def total_capacity(self) -> float:
        return float(self.capacities.sum())

    # --------------------------------------------------------- feasibility

    def node_loads(self, rates: Sequence[float]) -> np.ndarray:
        """``L^n R`` — CPU demand per node at rate point ``R``."""
        r = np.asarray(rates, dtype=float)
        if r.shape != (self.dimension,):
            raise ValueError(
                f"expected {self.dimension} rates, got shape {r.shape}"
            )
        return self.node_coefficients @ r

    def utilizations(self, rates: Sequence[float]) -> np.ndarray:
        """Per-node load / capacity; feasible points have all entries <= 1."""
        return self.node_loads(rates) / self.capacities

    def is_feasible(self, rates: Sequence[float], slack: float = 0.0) -> bool:
        """Whether no node is overloaded at ``R`` (within ``slack``)."""
        in_domain = (
            True
            if self.lower_bound is None
            else bool(np.all(np.asarray(rates, float) >= self.lower_bound - 1e-12))
        )
        return in_domain and bool(
            np.all(self.utilizations(rates) <= 1.0 + slack)
        )

    def bottleneck(self, rates: Sequence[float]) -> int:
        """Index of the most-utilized node at ``R``."""
        return int(np.argmax(self.utilizations(rates)))

    # ------------------------------------------------------------- geometry

    def weights(self) -> np.ndarray:
        """Normalized weight matrix ``W`` (Section 3.3)."""
        return geometry.weight_matrix(
            self.node_coefficients, self.capacities, self.column_totals
        )

    def plane_distance(self) -> float:
        """MMPD objective ``r``: distance of the closest node hyperplane.

        Measured from the normalized lower bound when one is set
        (Section 6.1), from the origin otherwise.
        """
        w = self.weights()
        if self.lower_bound is None:
            return geometry.min_plane_distance(w)
        b_hat = self.normalized_lower_bound()
        return float(np.min(geometry.plane_distance_from_point(w, b_hat)))

    def axis_distances(self) -> np.ndarray:
        """Per-node, per-axis distances ``1/w_ik`` (MMAD's metric)."""
        return geometry.axis_distances(self.weights())

    def min_axis_distances(self) -> np.ndarray:
        """Per-axis minimum over nodes — what MMAD maximizes."""
        return self.axis_distances().min(axis=0)

    def normalized_lower_bound(self) -> np.ndarray:
        """``B̂`` — the lower bound mapped into normalized space."""
        bound = (
            np.zeros(self.dimension)
            if self.lower_bound is None
            else self.lower_bound
        )
        return geometry.normalize_lower_bound(
            bound, self.column_totals, self.total_capacity
        )

    # --------------------------------------------------------------- volume

    def ideal_volume(self) -> float:
        """Volume of the ideal feasible set ``F*`` (Theorem 1)."""
        base = geometry.ideal_volume(self.capacities, self.column_totals)
        if self.lower_bound is None or math.isinf(base):
            return base
        scale = 1.0 - float(self.normalized_lower_bound().sum())
        if scale <= 0:
            return 0.0
        return base * scale ** self.dimension

    def volume_ratio(
        self,
        samples: int = 4096,
        method: str = "halton",
        seed: Optional[int] = None,
        target_se: Optional[float] = None,
        jobs: int = 1,
        representation: str = "auto",
    ) -> float:
        """QMC estimate of ``V(F) / V(F*)`` (in ``[0, 1]``).

        ``target_se`` enables early termination once the streaming
        standard-error estimate reaches the target (``samples`` caps the
        budget); ``jobs > 1`` splits the sample budget across worker
        processes without changing the result (see
        :func:`repro.core.volume.qmc.feasible_fraction`).
        ``representation`` selects the dense or sparse scoring kernel —
        a speed/memory knob only; the returned ratio is identical either
        way.
        """
        bound = (
            None if self.lower_bound is None else self.normalized_lower_bound()
        )
        return qmc.feasible_fraction(
            self.weights(),
            samples=samples,
            method=method,
            seed=seed,
            lower_bound=bound,
            target_se=target_se,
            jobs=jobs,
            representation=representation,
        )

    def volume_ratio_axis_sampled(
        self,
        samples: int = 4096,
        axis_budget: int = 16,
        seed: int = 0,
        batch: int = 512,
        representation: str = "auto",
    ) -> "tuple[float, float]":
        """Opt-in high-d estimate of ``V(F) / V(F*)``: ``(ratio, se)``.

        Spends the Halton budget on the ``axis_budget`` axes that bind
        feasibility hardest and fills the rest with seeded pseudo-random
        uniforms (see :func:`repro.core.volume.qmc.axis_sampled_fraction`).
        Not bit-identical to :meth:`volume_ratio` — use when the
        dimension is high enough (≳ 48) that full-dimensional Halton
        degrades, and read the returned standard error.
        """
        bound = (
            None if self.lower_bound is None else self.normalized_lower_bound()
        )
        return qmc.axis_sampled_fraction(
            self.weights(),
            samples=samples,
            axis_budget=axis_budget,
            seed=seed,
            batch=batch,
            lower_bound=bound,
            representation=representation,
        )

    def volume(
        self,
        samples: int = 4096,
        method: str = "halton",
        seed: Optional[int] = None,
    ) -> float:
        """QMC estimate of the absolute feasible-set volume."""
        ideal = self.ideal_volume()
        if math.isinf(ideal):
            raise ValueError(
                "feasible set is unbounded (some variable carries no load); "
                "only ratios are meaningful"
            )
        return ideal * self.volume_ratio(samples=samples, method=method, seed=seed)

    def exact_volume(self) -> float:
        """Exact volume by vertex enumeration (small ``n + d`` only)."""
        return polytope.feasible_volume(
            self.node_coefficients,
            self.capacities,
            lower_bound=self.lower_bound,
        )

    def exact_volume_ratio(self) -> float:
        """Exact ``V(F) / V(F*)``; requires a bounded ideal set."""
        ideal = self.ideal_volume()
        if math.isinf(ideal):
            raise ValueError("ideal volume is unbounded")
        if math.isclose(ideal, 0.0, abs_tol=1e-300):
            return 0.0
        return self.exact_volume() / ideal

    def vertices(self) -> np.ndarray:
        """Corner points of the feasible polytope (small ``n + d`` only).

        The intersections of node hyperplanes and axes that Figures 5/6
        mark — e.g. a node hyperplane's axis intercept ``C_i / l^n_ik``
        shows up as a vertex when it binds.
        """
        return polytope.polytope_vertices(
            self.node_coefficients, self.capacities
        )
