"""Quasi-Monte-Carlo estimation of feasible-set volume (Section 7.1).

The paper computes feasible-set sizes "using Quasi Monte Carlo
integration".  We reproduce that with Halton low-discrepancy sequences,
plus a plain pseudo-random fallback for variance checks.

The key trick that keeps every estimate a direct *ratio to the ideal
feasible set*: Theorem 1 makes the ideal simplex
``{x >= 0, sum_k x_k <= 1}`` (in normalized coordinates) a superset of
every achievable feasible set.  Sampling uniformly *inside that simplex*
and testing ``W x <= 1`` therefore estimates
``V(F(A)) / V(F*)`` with no wasted samples outside the ideal set.

Uniform simplex sampling uses the classical spacings construction: the
ordered coordinates of a point of ``[0,1]^d`` have spacings uniformly
distributed over the simplex, which works equally for pseudo-random and
low-discrepancy input points.

Performance notes (this module is the repro's inner loop):

* :func:`van_der_corput` is fully vectorized — one :func:`numpy.divmod`
  per *digit position*, never a Python loop over points — and digit
  contributions accumulate in the same least-significant-first order as
  the scalar recurrence, so results are bit-identical to it.
* :func:`sample_unit_simplex` serves points from the process-wide
  memoized cache in :mod:`repro.core.volume.cache`; every consumer of a
  ``(count, dimension, method, seed, skip)`` stream shares one
  generation.  Returned arrays are **read-only** views.
* Point ``skip + i`` of a stream equals point ``i`` of the same stream
  generated with ``skip`` more points skipped — streams are resumable,
  which is what lets :func:`feasible_fraction` split its sample budget
  across batches (``target_se``) or worker processes (``jobs``) and
  still return exactly the sequential answer.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .sparse import SparseWeights, sparse_feasible_mask

__all__ = [
    "first_primes",
    "van_der_corput",
    "halton",
    "simplex_from_cube",
    "sample_unit_simplex",
    "feasible_fraction",
    "stream_feasible_fraction",
    "axis_sampled_fraction",
    "binding_axis_order",
]

#: ``representation="auto"`` switches to the sparse kernel only when the
#: cluster is large and the weight matrix mostly structural zeros —
#: below that, building index lists costs more than it saves.
_SPARSE_AUTO_MIN_NODES = 32
_SPARSE_AUTO_MAX_DENSITY = 0.25

# Seed prime table (enough for 32-dimensional rate spaces without
# sieving); ``first_primes`` extends it on demand for higher dimensions.
_PRIMES: List[int] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
    59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
]


def _sieve_limit(count: int) -> int:
    """An upper bound on the ``count``-th prime (Rosser's theorem)."""
    if count < 6:
        return 13
    n = float(count)
    return int(n * (math.log(n) + math.log(math.log(n)))) + 1


def _grow_primes(count: int) -> None:
    """Extend the module prime table to at least ``count`` entries."""
    limit = _sieve_limit(count)
    mask = np.ones(limit + 1, dtype=bool)
    mask[:2] = False
    for p in range(2, math.isqrt(limit) + 1):  # noqa: REPRO506  # sieve striding: O(sqrt limit) iterations, not per-point
        if mask[p]:
            mask[p * p:: p] = False
    primes = np.flatnonzero(mask)
    _PRIMES[:] = [int(p) for p in primes[: max(count, len(_PRIMES))]]


def first_primes(count: int) -> Tuple[int, ...]:
    """The first ``count`` primes (Halton bases), sieved on demand."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if count > len(_PRIMES):
        _grow_primes(count)
    return tuple(_PRIMES[:count])


def van_der_corput(count: int, base: int, skip: int = 0) -> np.ndarray:
    """The van der Corput low-discrepancy sequence in the given base.

    Returns elements ``skip+1 .. skip+count`` (the sequence's 0th element
    is 0 and is conventionally skipped).  Vectorized over points: the
    loop below runs once per *digit position* (``O(log_base(skip +
    count))`` iterations), peeling the least-significant digit of every
    index at once — the same order the scalar recurrence accumulates in,
    so the output is bit-identical to it.
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if count < 0 or skip < 0:
        raise ValueError("count and skip must be >= 0")
    indices = np.arange(skip + 1, skip + count + 1, dtype=np.int64)
    out = np.zeros(count)
    denom = 1.0
    while indices.size and indices.any():
        indices, digits = np.divmod(indices, base)
        denom *= base
        out += digits / denom
    return out


def halton(count: int, dimension: int, skip: int = 0) -> np.ndarray:
    """``count`` points of the ``dimension``-D Halton sequence in [0,1)^d."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    bases = first_primes(dimension)
    return np.column_stack(
        [van_der_corput(count, base, skip=skip) for base in bases]
    )


def simplex_from_cube(points: np.ndarray) -> np.ndarray:
    """Map unit-cube points to the simplex ``{x >= 0, sum x <= 1}``.

    Uses sorted spacings: if ``u_(1) <= ... <= u_(d)`` are the ordered
    coordinates, the spacings ``(u_(1), u_(2)-u_(1), ...)`` are uniform on
    the simplex when the input is uniform on the cube.  Row-local, so any
    slice of rows maps exactly as it would inside a larger batch.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"expected 2-D point array, got shape {pts.shape}")
    ordered = np.sort(pts, axis=1)
    return np.diff(ordered, axis=1, prepend=0.0)


def generate_unit_simplex(
    count: int,
    dimension: int,
    method: str = "halton",
    seed: Optional[int] = None,
    skip: int = 0,
) -> np.ndarray:
    """Generate simplex points without consulting the cache (always fresh).

    The ``skip`` parameter resumes the stream for both methods: Halton
    indices shift, and the pseudo-random stream is replayed from its seed
    and sliced, so batch ``[skip, skip+count)`` always equals the same
    rows of a one-shot generation.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if skip < 0:
        raise ValueError("skip must be >= 0")
    if method == "halton":
        cube = halton(count, dimension, skip=skip)
    elif method == "random":
        rng = np.random.default_rng(seed)
        cube = rng.random((skip + count, dimension))[skip:]
    else:
        raise ValueError(f"unknown sampling method: {method!r}")
    return simplex_from_cube(cube)


def sample_unit_simplex(
    count: int,
    dimension: int,
    method: str = "halton",
    seed: Optional[int] = None,
    skip: int = 0,
) -> np.ndarray:
    """Uniform points in the unit simplex, QMC (default) or pseudo-random.

    Served from the process-wide memoized cache
    (:mod:`repro.core.volume.cache`): repeated requests for the same
    stream — the annealing placer, :meth:`FeasibleSet.volume_ratio`,
    every experiment harness — share a single generation.  The returned
    array is **read-only**; callers that need to write must copy.
    Unseeded pseudo-random requests bypass the cache (they are
    non-reproducible by construction) but are read-only too.
    """
    # Imported here, not at module top: the cache generates through this
    # module's functions, so a top-level import would be circular.
    from . import cache as _cache

    return _cache.simplex_points(
        count, dimension, method=method, seed=seed, skip=skip
    )


def _prepare_weights(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise ValueError(f"weight matrix must be 2-D, got shape {w.shape}")
    return w


def _prepare_bound(
    lower_bound: Optional[Sequence[float]], dimension: int
) -> Tuple[Optional[np.ndarray], float]:
    """Validated ``(B̂, scale)``; ``scale <= 0`` means an empty region."""
    if lower_bound is None:
        return None, 1.0
    b = np.asarray(lower_bound, dtype=float)
    if b.shape != (dimension,):
        raise ValueError(
            f"lower bound shape {b.shape} does not match d={dimension}"
        )
    return b, 1.0 - float(b.sum())


def _resolve_sparse(
    w: np.ndarray, representation: str
) -> Optional[SparseWeights]:
    """The :class:`SparseWeights` to score with, or ``None`` for dense."""
    if representation == "dense":
        return None
    if representation not in ("sparse", "auto"):
        raise ValueError(f"unknown representation: {representation!r}")
    sparse = SparseWeights(w)
    if representation == "sparse":
        return sparse
    if (
        w.shape[0] >= _SPARSE_AUTO_MIN_NODES
        and sparse.density <= _SPARSE_AUTO_MAX_DENSITY
    ):
        return sparse
    return None


def _feasible_count(
    w: np.ndarray,
    points: np.ndarray,
    bound: Optional[np.ndarray],
    scale: float,
    sparse: Optional[SparseWeights] = None,
) -> int:
    """Number of (optionally bound-shifted) points with ``W x <= 1``.

    With ``sparse`` given, scoring runs through the per-node
    active-column kernel; decisions (and therefore the count) equal the
    dense expression's — see :mod:`repro.core.volume.sparse`.
    """
    if bound is not None:
        points = bound + scale * points
    if sparse is not None:
        feasible, _rescored = sparse_feasible_mask(sparse, points)
    else:
        feasible = np.all(points @ w.T <= 1.0 + 1e-12, axis=1)
    return int(np.count_nonzero(feasible))


def _feasible_count_task(
    task: Tuple[np.ndarray, int, int, str, Optional[int],
                Optional[np.ndarray], float, str],
) -> int:
    """Process-pool task: feasibility count over one chunk of the stream."""
    w, skip, count, method, seed, bound, scale, representation = task
    points = sample_unit_simplex(
        count, w.shape[1], method=method, seed=seed, skip=skip
    )
    return _feasible_count(
        w, points, bound, scale, sparse=_resolve_sparse(w, representation)
    )


def stream_feasible_fraction(
    weights: np.ndarray,
    batch: int = 1024,
    max_samples: int = 1 << 20,
    method: str = "halton",
    seed: Optional[int] = None,
    lower_bound: Optional[Sequence[float]] = None,
    representation: str = "auto",
) -> Iterator[Tuple[int, float, float]]:
    """Streaming ``V(F)/V(F*)`` estimate: yields ``(n, fraction, se)``.

    Draws the point stream in ``batch``-size chunks (resumed via
    ``skip``, so ``n`` samples seen streaming equal the first ``n`` of a
    one-shot run) and yields the running sample count, feasible
    fraction, and a binomial standard-error estimate after every chunk.
    The SE uses a Laplace-smoothed ``p̂ = (c+1)/(n+2)`` so an all-(in)feasible
    first batch does not report certainty; it is a heuristic — Halton
    points are not i.i.d., and QMC error typically decays faster than
    the binomial rate, making the estimate conservative.
    """
    w = _prepare_weights(weights)
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if max_samples < 1:
        raise ValueError("need at least one sample")
    bound, scale = _prepare_bound(lower_bound, w.shape[1])
    if bound is not None and scale <= 0.0:
        yield 0, 0.0, 0.0
        return
    sparse = _resolve_sparse(w, representation)
    seen = 0
    count = 0
    while seen < max_samples:
        take = min(batch, max_samples - seen)
        points = sample_unit_simplex(
            take, w.shape[1], method=method, seed=seed, skip=seen
        )
        count += _feasible_count(w, points, bound, scale, sparse=sparse)
        seen += take
        smoothed = (count + 1.0) / (seen + 2.0)
        se = math.sqrt(smoothed * (1.0 - smoothed) / seen)
        yield seen, count / seen, se


def feasible_fraction(
    weights: np.ndarray,
    samples: int = 4096,
    method: str = "halton",
    seed: Optional[int] = None,
    lower_bound: Optional[Sequence[float]] = None,
    target_se: Optional[float] = None,
    batch: int = 1024,
    jobs: int = 1,
    representation: str = "auto",
) -> float:
    """Estimate ``V(F(A)) / V(F*)`` for a weight matrix ``W``.

    A normalized point ``x`` is feasible iff ``W x <= 1`` for every node.
    With a normalized ``lower_bound`` ``B̂``, sampling happens inside the
    *shifted* ideal simplex ``{x >= B̂, sum x <= 1}`` and the returned
    fraction is relative to that restricted ideal region (the workload-set
    restriction of Section 6.1).  Returns 0.0 when the lower bound itself
    lies on or outside the ideal hyperplane.

    With ``target_se`` set, the estimate streams the points in
    ``batch``-size chunks and stops early once the running standard
    error (see :func:`stream_feasible_fraction`) drops to the target;
    ``samples`` caps the budget.  With ``jobs > 1``, the sample budget
    is split into per-worker chunks evaluated in parallel processes;
    chunk feasibility counts are integers over the identical resumable
    point stream, so the result is exactly the sequential one.

    ``representation`` picks the scoring kernel: ``"dense"`` (the
    reference ``points @ W.T``), ``"sparse"`` (per-node active-column
    dots, see :mod:`repro.core.volume.sparse`), or ``"auto"`` (sparse
    only for large, mostly-zero matrices).  All three return identical
    fractions — sparse scoring guard-bands boundary samples back through
    the dense expression — so the choice is purely a speed/memory knob.
    """
    w = _prepare_weights(weights)
    if samples < 1:
        raise ValueError("need at least one sample")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    bound, scale = _prepare_bound(lower_bound, w.shape[1])
    if bound is not None and scale <= 0.0:
        return 0.0

    if target_se is not None:
        fraction = 0.0
        for seen, fraction, se in stream_feasible_fraction(
            w, batch=batch, max_samples=samples, method=method,
            seed=seed, lower_bound=lower_bound,
            representation=representation,
        ):
            if se <= target_se:
                break
        return fraction

    if jobs > 1 and samples > 1:
        from ... import parallel as _parallel

        chunk = -(-samples // jobs)  # ceil division
        tasks = [
            (w, skip, min(chunk, samples - skip), method, seed, bound,
             scale, representation)
            for skip in range(0, samples, chunk)
        ]
        counts = _parallel.parallel_map(
            _feasible_count_task, tasks, jobs=jobs
        )
        return sum(counts) / samples

    points = sample_unit_simplex(samples, w.shape[1], method=method, seed=seed)
    return _feasible_count(
        w, points, bound, scale, sparse=_resolve_sparse(w, representation)
    ) / samples


def binding_axis_order(weights: np.ndarray) -> np.ndarray:
    """Axes ordered by how strongly they bind feasibility, most first.

    An axis (rate variable) ``k`` binds feasibility through the largest
    weight any node places on it: the half-space ``W_i x <= 1`` clips
    the simplex along axis ``k`` at ``1 / w_ik``, so
    ``score_k = max_i w_ik`` measures how much of the ideal extent the
    tightest node leaves.  Ties break toward the lower axis index so the
    order is deterministic.
    """
    w = _prepare_weights(weights)
    scores = w.max(axis=0) if w.shape[0] else np.zeros(w.shape[1])
    # stable sort on negated scores: descending score, ascending index.
    return np.argsort(-scores, kind="stable")


def axis_sampled_fraction(
    weights: np.ndarray,
    samples: int = 4096,
    axis_budget: int = 16,
    seed: int = 0,
    batch: int = 512,
    lower_bound: Optional[Sequence[float]] = None,
    representation: str = "auto",
) -> Tuple[float, float]:
    """High-d volume ratio via importance-weighted axis-sampled QMC.

    Halton bases are a finite resource: in very high dimension the late
    (large-prime) coordinates of a Halton point correlate badly before
    astronomically many samples.  This estimator spends the
    low-discrepancy budget where it matters — the ``axis_budget`` axes
    that bind feasibility hardest (see :func:`binding_axis_order`) get
    the first Halton bases — and fills the remaining axes with seeded
    pseudo-random uniforms.  The mixed cube maps through the same
    spacings construction, so the estimate is still unbiased; what
    changes is *which* axes enjoy QMC's accelerated convergence.

    Returns ``(fraction, se)``.  The standard error comes from treating
    each ``batch``-size block as one replicate and taking the spread of
    the per-block fractions — an honest empirical error bar, unlike the
    binomial heuristic of :func:`stream_feasible_fraction`, because the
    pseudo-random axes re-randomize every block.

    This estimator is **opt-in** (nothing routes through it by default):
    its point stream differs from :func:`feasible_fraction`'s, so it is
    *not* bit-identical to the reference path.  Use it when ``d`` is
    large enough (≳ 48) that full-dimensional Halton degrades.
    """
    w = _prepare_weights(weights)
    if samples < 1:
        raise ValueError("need at least one sample")
    if axis_budget < 1:
        raise ValueError("axis_budget must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    dimension = w.shape[1]
    bound, scale = _prepare_bound(lower_bound, dimension)
    if bound is not None and scale <= 0.0:
        return 0.0, 0.0
    axis_budget = min(axis_budget, dimension)
    order = binding_axis_order(w)
    qmc_axes = order[:axis_budget]
    rng = np.random.default_rng(seed)
    sparse = _resolve_sparse(w, representation)

    seen = 0
    count = 0
    block_fractions: List[float] = []
    while seen < samples:
        take = min(batch, samples - seen)
        cube = rng.random((take, dimension))
        cube[:, qmc_axes] = halton(take, axis_budget, skip=seen)
        points = simplex_from_cube(cube)
        block = _feasible_count(w, points, bound, scale, sparse=sparse)
        count += block
        block_fractions.append(block / take)
        seen += take
    fraction = count / seen
    if len(block_fractions) > 1:
        spread = float(np.std(block_fractions, ddof=1))
        se = spread / math.sqrt(len(block_fractions))
    else:
        # Single block: fall back to the binomial heuristic.
        smoothed = (count + 1.0) / (seen + 2.0)
        se = math.sqrt(smoothed * (1.0 - smoothed) / seen)
    return fraction, se
