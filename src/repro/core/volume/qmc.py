"""Quasi-Monte-Carlo estimation of feasible-set volume (Section 7.1).

The paper computes feasible-set sizes "using Quasi Monte Carlo
integration".  We reproduce that with Halton low-discrepancy sequences,
plus a plain pseudo-random fallback for variance checks.

The key trick that keeps every estimate a direct *ratio to the ideal
feasible set*: Theorem 1 makes the ideal simplex
``{x >= 0, sum_k x_k <= 1}`` (in normalized coordinates) a superset of
every achievable feasible set.  Sampling uniformly *inside that simplex*
and testing ``W x <= 1`` therefore estimates
``V(F(A)) / V(F*)`` with no wasted samples outside the ideal set.

Uniform simplex sampling uses the classical spacings construction: the
ordered coordinates of a point of ``[0,1]^d`` have spacings uniformly
distributed over the simplex, which works equally for pseudo-random and
low-discrepancy input points.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "first_primes",
    "van_der_corput",
    "halton",
    "simplex_from_cube",
    "sample_unit_simplex",
    "feasible_fraction",
]

# Enough primes for up to 32-dimensional rate spaces.
_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
    59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
)


def first_primes(count: int) -> tuple:
    """The first ``count`` primes (Halton bases)."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if count > len(_PRIMES):
        raise ValueError(
            f"only {len(_PRIMES)} Halton bases available, asked for {count}"
        )
    return _PRIMES[:count]


def van_der_corput(count: int, base: int, skip: int = 0) -> np.ndarray:
    """The van der Corput low-discrepancy sequence in the given base.

    Returns elements ``skip+1 .. skip+count`` (the sequence's 0th element
    is 0 and is conventionally skipped).
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if count < 0 or skip < 0:
        raise ValueError("count and skip must be >= 0")
    out = np.empty(count)
    for i in range(count):
        n = skip + i + 1
        value, denom = 0.0, 1.0
        while n:
            n, digit = divmod(n, base)
            denom *= base
            value += digit / denom
        out[i] = value
    return out


def halton(count: int, dimension: int, skip: int = 0) -> np.ndarray:
    """``count`` points of the ``dimension``-D Halton sequence in [0,1)^d."""
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    bases = first_primes(dimension)
    return np.column_stack(
        [van_der_corput(count, base, skip=skip) for base in bases]
    )


def simplex_from_cube(points: np.ndarray) -> np.ndarray:
    """Map unit-cube points to the simplex ``{x >= 0, sum x <= 1}``.

    Uses sorted spacings: if ``u_(1) <= ... <= u_(d)`` are the ordered
    coordinates, the spacings ``(u_(1), u_(2)-u_(1), ...)`` are uniform on
    the simplex when the input is uniform on the cube.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError(f"expected 2-D point array, got shape {pts.shape}")
    ordered = np.sort(pts, axis=1)
    return np.diff(ordered, axis=1, prepend=0.0)


def sample_unit_simplex(
    count: int,
    dimension: int,
    method: str = "halton",
    seed: Optional[int] = None,
    skip: int = 0,
) -> np.ndarray:
    """Uniform points in the unit simplex, QMC (default) or pseudo-random."""
    if count < 0:
        raise ValueError("count must be >= 0")
    if method == "halton":
        cube = halton(count, dimension, skip=skip)
    elif method == "random":
        rng = np.random.default_rng(seed)
        cube = rng.random((count, dimension))
    else:
        raise ValueError(f"unknown sampling method: {method!r}")
    return simplex_from_cube(cube)


def feasible_fraction(
    weights: np.ndarray,
    samples: int = 4096,
    method: str = "halton",
    seed: Optional[int] = None,
    lower_bound: Optional[Sequence[float]] = None,
) -> float:
    """Estimate ``V(F(A)) / V(F*)`` for a weight matrix ``W``.

    A normalized point ``x`` is feasible iff ``W x <= 1`` for every node.
    With a normalized ``lower_bound`` ``B̂``, sampling happens inside the
    *shifted* ideal simplex ``{x >= B̂, sum x <= 1}`` and the returned
    fraction is relative to that restricted ideal region (the workload-set
    restriction of Section 6.1).  Returns 0.0 when the lower bound itself
    lies on or outside the ideal hyperplane.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise ValueError(f"weight matrix must be 2-D, got shape {w.shape}")
    n, d = w.shape
    if samples < 1:
        raise ValueError("need at least one sample")
    points = sample_unit_simplex(samples, d, method=method, seed=seed)
    if lower_bound is not None:
        b = np.asarray(lower_bound, dtype=float)
        if b.shape != (d,):
            raise ValueError(
                f"lower bound shape {b.shape} does not match d={d}"
            )
        scale = 1.0 - float(b.sum())
        if scale <= 0.0:
            return 0.0
        points = b + scale * points
    feasible = np.all(points @ w.T <= 1.0 + 1e-12, axis=1)
    return float(np.mean(feasible))
