"""Exact feasible-set volumes for small dimensions.

The feasible set ``F = {R >= 0 : L^n R <= C}`` is a convex polytope.  For
the small instances where the paper compares against the optimal plan
(Section 7.3.1: at most two nodes and five input streams), exact volumes
are tractable by vertex enumeration — every vertex is the intersection of
``d`` of the ``n + d`` constraint hyperplanes — followed by a convex-hull
volume computation.

The exhaustive :mod:`repro.placement.optimal` placer uses these exact
volumes so that "optimal" really is the volume-maximizing plan rather than
an estimate.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Sequence

import numpy as np
from scipy.spatial import ConvexHull, QhullError

__all__ = [
    "polytope_vertices",
    "polytope_volume",
    "feasible_volume",
    "simplex_volume",
]

_TOL = 1e-9


def _halfspaces(
    node_coefficients: np.ndarray, capacities: np.ndarray
) -> tuple:
    """Stack node constraints and non-negativity into ``A x <= b`` form."""
    ln = np.asarray(node_coefficients, dtype=float)
    c = np.asarray(capacities, dtype=float)
    if ln.ndim != 2:
        raise ValueError(f"L^n must be 2-D, got shape {ln.shape}")
    if c.shape != (ln.shape[0],):
        raise ValueError(
            f"capacity shape {c.shape} does not match n={ln.shape[0]}"
        )
    d = ln.shape[1]
    a = np.vstack([ln, -np.eye(d)])
    b = np.concatenate([c, np.zeros(d)])
    return a, b


def polytope_vertices(
    node_coefficients: np.ndarray, capacities: Sequence[float]
) -> np.ndarray:
    """All vertices of ``{R >= 0 : L^n R <= C}`` by basis enumeration.

    Returns an array of shape ``(v, d)``.  Raises ``ValueError`` if the
    polytope is unbounded (some variable carries no positive load on any
    node), since its volume — and hence a resilience comparison — is then
    meaningless in absolute terms.
    """
    a, b = _halfspaces(
        np.asarray(node_coefficients, float), np.asarray(capacities, float)
    )
    d = a.shape[1]
    ln = np.asarray(node_coefficients, dtype=float)
    unbounded = ~np.any(ln > _TOL, axis=0)
    if np.any(unbounded):
        raise ValueError(
            "polytope is unbounded along axes "
            f"{np.nonzero(unbounded)[0].tolist()}: no node carries load "
            "from those variables"
        )
    # Scale-invariant tolerances: coefficients may be ~1e-3 (costs in CPU
    # seconds), making raw determinants ~1e-3^d; compare against the
    # Hadamard bound (product of row norms) instead of an absolute cut.
    row_norms = np.linalg.norm(a, axis=1)
    constraint_scale = np.maximum(np.abs(b), 1.0)
    vertices = []
    for rows in itertools.combinations(range(a.shape[0]), d):
        index = list(rows)
        sub_a = a[index]
        hadamard = float(np.prod(row_norms[index]))
        if hadamard <= 0.0:
            continue
        if abs(np.linalg.det(sub_a)) < 1e-12 * hadamard:
            continue
        point = np.linalg.solve(sub_a, b[index])
        if np.all(a @ point <= b + _TOL * constraint_scale):
            vertices.append(point)
    if not vertices:
        return np.zeros((0, d))
    # Deduplicate on rounded keys but keep exact coordinates.
    stacked = np.vstack(vertices)
    _, first_indices = np.unique(
        np.round(stacked, 9), axis=0, return_index=True
    )
    return stacked[np.sort(first_indices)]


def polytope_volume(
    node_coefficients: np.ndarray, capacities: Sequence[float]
) -> float:
    """Exact volume of ``{R >= 0 : L^n R <= C}``.

    Returns 0.0 for degenerate (lower-dimensional) feasible sets.
    """
    vertices = polytope_vertices(node_coefficients, capacities)
    d = np.asarray(node_coefficients).shape[1]
    if d == 1:
        if vertices.size == 0:
            return 0.0
        return float(vertices.max() - vertices.min())
    if vertices.shape[0] <= d:
        return 0.0
    try:
        return float(ConvexHull(vertices).volume)
    except QhullError:
        return 0.0


def feasible_volume(
    node_coefficients: np.ndarray,
    capacities: Sequence[float],
    lower_bound: Optional[Sequence[float]] = None,
) -> float:
    """Exact volume of the feasible set, optionally above a rate floor.

    With ``lower_bound`` B the volume of ``{R >= B : L^n R <= C}`` is
    computed by translating the polytope: substitute ``R = B + S`` with
    ``S >= 0`` and capacities reduced by ``L^n B``.  Returns 0.0 if the
    lower bound itself overloads some node.
    """
    ln = np.asarray(node_coefficients, dtype=float)
    c = np.asarray(capacities, dtype=float)
    if lower_bound is None:
        return polytope_volume(ln, c)
    b = np.asarray(lower_bound, dtype=float)
    if b.shape != (ln.shape[1],):
        raise ValueError(
            f"lower bound shape {b.shape} does not match d={ln.shape[1]}"
        )
    if np.any(b < 0):
        raise ValueError(f"lower bound must be >= 0, got {b!r}")
    residual = c - ln @ b
    if np.any(residual < -_TOL):
        return 0.0
    return polytope_volume(ln, np.maximum(residual, 0.0))


def simplex_volume(intercepts: Sequence[float]) -> float:
    """Volume of ``{x >= 0, sum x_k / t_k <= 1}`` = ``prod t_k / d!``.

    Convenience for closed-form checks in tests.
    """
    t = np.asarray(intercepts, dtype=float)
    if np.any(t <= 0):
        raise ValueError(f"intercepts must be > 0, got {t!r}")
    d = t.shape[0]
    return float(np.prod(t) / math.factorial(d))
