"""Process-wide memoized cache of QMC sample points.

Every consumer of low-discrepancy points — :meth:`FeasibleSet.volume_ratio`,
the annealing and exhaustive placers, the experiment harnesses — asks for
the same kind of stream: ``(dimension, method, seed, skip)`` identifies
it, ``count`` says how much of it.  Generating Halton points is the
single most repeated computation in the reproduction, so this module
keeps one generation per stream and hands out **read-only prefix views**:

* A request that fits inside an existing generation is a *hit* and costs
  one dictionary lookup plus a slice.
* A request that extends a Halton generation reuses the cached prefix and
  generates only the missing tail (streams are ``skip``-resumable, so the
  extension is bit-identical to a one-shot generation).
* Cached arrays have ``writeable=False``: a caller that tries to mutate
  shared points fails loudly instead of silently poisoning every later
  estimate.
* Unseeded pseudo-random requests are non-reproducible by construction
  and bypass the cache entirely (still returned read-only, for a
  consistent contract).

Cache effectiveness is observable: :func:`cache_stats` returns the raw
counters and :func:`publish_metrics` exports them into a
:class:`~repro.obs.metrics.MetricsRegistry` as ``repro_volume_cache_hits``
/ ``..._misses`` / ``..._evictions`` counters and a
``repro_volume_cache_points`` gauge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ...obs.metrics import MetricsRegistry

__all__ = [
    "simplex_points",
    "cache_stats",
    "clear_cache",
    "publish_metrics",
    "MAX_ENTRIES",
]

#: Streams kept resident before least-recently-used eviction kicks in.
MAX_ENTRIES = 64

_Key = Tuple[int, str, Optional[int], int]

_LOCK = threading.Lock()
_ENTRIES: "OrderedDict[_Key, np.ndarray]" = OrderedDict()
_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _generate(
    count: int, dimension: int, method: str, seed: Optional[int], skip: int
) -> np.ndarray:
    from . import qmc

    return qmc.generate_unit_simplex(
        count, dimension, method=method, seed=seed, skip=skip
    )


def _freeze(points: np.ndarray) -> np.ndarray:
    points.setflags(write=False)
    return points


def simplex_points(
    count: int,
    dimension: int,
    method: str = "halton",
    seed: Optional[int] = None,
    skip: int = 0,
) -> np.ndarray:
    """``count`` unit-simplex points of the given stream, memoized.

    Returns a read-only ``(count, dimension)`` view; identical requests
    (and shorter prefixes of earlier ones) share storage.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    if skip < 0:
        raise ValueError("skip must be >= 0")
    if method not in ("halton", "random"):
        raise ValueError(f"unknown sampling method: {method!r}")
    if method == "random" and seed is None:
        # Non-reproducible stream: nothing to share.
        return _freeze(_generate(count, dimension, method, seed, skip))

    key: _Key = (dimension, method, seed, skip)
    with _LOCK:
        cached = _ENTRIES.get(key)
        if cached is not None and cached.shape[0] >= count:
            _STATS["hits"] += 1
            _ENTRIES.move_to_end(key)
            return cached[:count]

        _STATS["misses"] += 1
        if cached is None or method != "halton":
            # Pseudo-random growth replays the stream from its seed (the
            # prefix property makes the result consistent with any views
            # handed out from the smaller generation).
            points = _generate(count, dimension, method, seed, skip)
        else:
            have = cached.shape[0]
            tail = _generate(count - have, dimension, method, seed,
                             skip + have)
            points = np.concatenate([cached, tail], axis=0)
        _freeze(points)
        _ENTRIES[key] = points
        _ENTRIES.move_to_end(key)
        while len(_ENTRIES) > MAX_ENTRIES:
            _ENTRIES.popitem(last=False)
            _STATS["evictions"] += 1
        return points[:count]


def cache_stats() -> Dict[str, int]:
    """Raw cache counters plus current occupancy."""
    with _LOCK:
        stats = dict(_STATS)
        stats["entries"] = len(_ENTRIES)
        stats["points"] = int(
            sum(entry.shape[0] for entry in _ENTRIES.values())
        )
    return stats


def clear_cache() -> None:
    """Drop every cached stream and zero the counters (test isolation)."""
    with _LOCK:
        _ENTRIES.clear()
        for field in _STATS:
            _STATS[field] = 0


def publish_metrics(registry: MetricsRegistry) -> None:
    """Export the cache counters into ``registry`` (one-shot snapshot)."""
    stats = cache_stats()
    registry.counter(
        "repro_volume_cache_hits",
        "QMC sample-point cache hits",
    ).inc(stats["hits"])
    registry.counter(
        "repro_volume_cache_misses",
        "QMC sample-point cache misses (generations)",
    ).inc(stats["misses"])
    registry.counter(
        "repro_volume_cache_evictions",
        "QMC sample-point cache LRU evictions",
    ).inc(stats["evictions"])
    registry.gauge(
        "repro_volume_cache_points",
        "QMC sample points currently resident in the cache",
    ).set(stats["points"])
