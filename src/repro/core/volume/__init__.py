"""Feasible-set volume computation: QMC estimates and exact polytopes."""

from .cache import cache_stats, clear_cache, simplex_points
from .qmc import (
    feasible_fraction,
    first_primes,
    halton,
    sample_unit_simplex,
    simplex_from_cube,
    stream_feasible_fraction,
    van_der_corput,
)
from .polytope import (
    feasible_volume,
    polytope_vertices,
    polytope_volume,
    simplex_volume,
)

__all__ = [
    "cache_stats",
    "clear_cache",
    "feasible_fraction",
    "feasible_volume",
    "first_primes",
    "halton",
    "polytope_vertices",
    "polytope_volume",
    "sample_unit_simplex",
    "simplex_from_cube",
    "simplex_points",
    "simplex_volume",
    "stream_feasible_fraction",
    "van_der_corput",
]
