"""Feasible-set volume computation: QMC estimates and exact polytopes."""

from .qmc import (
    feasible_fraction,
    first_primes,
    halton,
    sample_unit_simplex,
    simplex_from_cube,
    van_der_corput,
)
from .polytope import (
    feasible_volume,
    polytope_vertices,
    polytope_volume,
    simplex_volume,
)

__all__ = [
    "feasible_fraction",
    "feasible_volume",
    "first_primes",
    "halton",
    "polytope_vertices",
    "polytope_volume",
    "sample_unit_simplex",
    "simplex_from_cube",
    "simplex_volume",
    "van_der_corput",
]
