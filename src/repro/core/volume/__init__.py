"""Feasible-set volume computation: QMC estimates and exact polytopes."""

from .cache import cache_stats, clear_cache, simplex_points
from .qmc import (
    axis_sampled_fraction,
    binding_axis_order,
    feasible_fraction,
    first_primes,
    halton,
    sample_unit_simplex,
    simplex_from_cube,
    stream_feasible_fraction,
    van_der_corput,
)
from .sparse import GUARD_BAND, SparseWeights, sparse_feasible_mask
from .polytope import (
    feasible_volume,
    polytope_vertices,
    polytope_volume,
    simplex_volume,
)

__all__ = [
    "GUARD_BAND",
    "SparseWeights",
    "axis_sampled_fraction",
    "binding_axis_order",
    "cache_stats",
    "clear_cache",
    "feasible_fraction",
    "feasible_volume",
    "first_primes",
    "halton",
    "polytope_vertices",
    "polytope_volume",
    "sample_unit_simplex",
    "simplex_from_cube",
    "simplex_points",
    "simplex_volume",
    "sparse_feasible_mask",
    "stream_feasible_fraction",
    "van_der_corput",
]
