"""Sparse, structure-aware feasibility scoring for large clusters.

At production scale (hundreds to thousands of nodes) each node hosts
only a handful of operators, so a node's weight row touches few of the
``d`` rate variables.  The dense kernel still pays ``samples * n * d``
multiply-adds per estimate — almost all of them against structural
zeros.  :class:`SparseWeights` stores, per node, only the active column
index list and its values (memory ``O(nnz)`` instead of ``O(n d)``) and
scores feasibility in ``samples * nnz`` work.

**Exactness contract.**  The sparse path returns the *same feasibility
decisions* as the dense kernel.  Sparse and dense dot products of the
same row can differ in the last ulp (different summation order), so
every sample whose worst node margin lands inside a guard band around
the threshold — ``GUARD_BAND`` wide, ~six orders of magnitude above the
accumulated rounding of these dots and ~six below any meaningful
geometric margin — is re-scored through the dense expression before a
decision is made.  Samples outside the band cannot flip; samples inside
it get the dense answer by construction.  The guard-band population is
typically zero (a sample must graze a node hyperplane to enter it), so
the fast path stays ``O(samples * nnz)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["GUARD_BAND", "SparseWeights", "sparse_feasible_mask"]

#: Half-width of the uncertainty band around the feasibility threshold
#: inside which a sample is re-scored densely.  Dot products here carry
#: relative rounding ~``d * eps`` (≈1e-14 at d=64); the band is six
#: orders of magnitude wider, and still negligible against the O(1)
#: scale of normalized weights.
GUARD_BAND = 1e-8

#: Matching the dense kernel's feasibility tolerance (see
#: :func:`repro.core.volume.qmc.feasible_fraction`).
_THRESHOLD = 1.0 + 1e-12


class SparseWeights:
    """Per-node active-column representation of a weight matrix ``W``.

    Rows are stored as ``(column index list, value list)`` pairs; the
    dense matrix is kept only as the argument to the guard-band rescore
    (callers at true scale can drop their own dense copy).
    """

    def __init__(self, weights: np.ndarray) -> None:
        w = np.asarray(weights, dtype=float)
        if w.ndim != 2:
            raise ValueError(f"weight matrix must be 2-D, got shape {w.shape}")
        self._dense = w
        self.num_nodes, self.dimension = w.shape
        self.columns: List[np.ndarray] = []
        self.values: List[np.ndarray] = []
        nnz = 0
        for row in w:
            idx = np.flatnonzero(row)
            self.columns.append(idx)
            self.values.append(np.ascontiguousarray(row[idx]))
            nnz += idx.size
        self.nnz = nnz

    @property
    def density(self) -> float:
        """Fraction of stored entries that are non-zero."""
        cells = self.num_nodes * self.dimension
        return self.nnz / cells if cells else 1.0

    def dense(self) -> np.ndarray:
        """The dense matrix (for the guard-band rescore path)."""
        return self._dense


def sparse_feasible_mask(
    sparse: SparseWeights, points: np.ndarray
) -> Tuple[np.ndarray, int]:
    """Per-sample feasibility of ``W x <= 1`` via sparse row dots.

    Returns ``(mask, rescored)`` where ``mask[s]`` is the feasibility
    decision for sample ``s`` and ``rescored`` counts the samples whose
    margin fell inside :data:`GUARD_BAND` and were therefore re-scored
    through the dense expression.  Decisions equal the dense kernel's
    for every sample (see the module docstring's exactness contract).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != sparse.dimension:
        raise ValueError(
            f"points shape {pts.shape} does not match d={sparse.dimension}"
        )
    count = pts.shape[0]
    # Worst (largest) dot across nodes per sample; empty rows dot to 0.
    worst = np.zeros(count)
    for idx, vals in zip(sparse.columns, sparse.values):
        if idx.size == 0:
            continue
        dots = pts[:, idx] @ vals
        np.maximum(worst, dots, out=worst)
    feasible = worst <= _THRESHOLD
    uncertain = np.abs(worst - _THRESHOLD) <= GUARD_BAND
    rescored = int(np.count_nonzero(uncertain))
    if rescored:
        sub = pts[uncertain] @ sparse.dense().T
        feasible[uncertain] = np.all(sub <= _THRESHOLD, axis=1)
    return feasible, rescored
