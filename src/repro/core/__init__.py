"""The paper's primary contribution: load model, feasible-set geometry,
the ROD placement algorithm and its extensions."""

from .analysis import (
    BottleneckReport,
    axis_headroom,
    bottleneck_report,
    headroom,
    resilience_summary,
)
from .feasible_set import FeasibleSet
from .linearize import LinearizationReport, find_cut_streams, linearization_report
from .load_model import LoadModel, build_load_model
from .plans import Placement, diff_placements, placement_from_mapping
from .rod import RodStep, rod_extend, rod_order, rod_place
from .viz import compare_feasible_sets, render_feasible_set
from .clustering import (
    ClusteredModel,
    Clustering,
    ClusteringSearchResult,
    cluster_operators,
    communication_feasible_set,
    search_clusterings,
)

__all__ = [
    "BottleneckReport",
    "ClusteredModel",
    "axis_headroom",
    "bottleneck_report",
    "headroom",
    "resilience_summary",
    "Clustering",
    "ClusteringSearchResult",
    "FeasibleSet",
    "LinearizationReport",
    "LoadModel",
    "Placement",
    "RodStep",
    "build_load_model",
    "cluster_operators",
    "communication_feasible_set",
    "compare_feasible_sets",
    "diff_placements",
    "render_feasible_set",
    "find_cut_streams",
    "linearization_report",
    "placement_from_mapping",
    "rod_extend",
    "rod_order",
    "rod_place",
    "search_clusterings",
]
