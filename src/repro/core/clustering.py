"""Operator clustering for communication cost (Section 6.3).

ROD itself ignores the CPU overhead of sending tuples between nodes.  When
that overhead matters, the paper pre-processes the graph: arcs that are
expensive relative to their endpoint operators' processing work are
*contracted* so both endpoints land on the same machine, then ROD places
the resulting clusters.

Two greedy contraction heuristics are reproduced:

* ``"ratio"`` — repeatedly contract the arc with the largest *clustering
  ratio* (per-tuple transfer overhead over the minimum per-tuple
  processing overhead of the two end operators) until every ratio is
  below a threshold;
* ``"weight"`` — among arcs above the threshold, contract the pair whose
  combined load-coefficient weight is smallest, avoiding heavyweight
  clusters.

Both respect an upper bound on cluster weight (a cluster whose share of
some variable's load exceeds the smallest node's capacity share can never
be balanced).  Since neither heuristic dominates, :func:`search_clusterings`
sweeps thresholds for both and keeps the ROD plan with the maximum
communication-adjusted plane distance — the paper's "current practical
solution".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from . import geometry
from .feasible_set import FeasibleSet
from .load_model import LoadModel
from .plans import Placement
from .rod import rod_place

__all__ = [
    "TransferCosts",
    "Clustering",
    "ClusteredModel",
    "cluster_by_affinity",
    "cluster_operators",
    "communication_feasible_set",
    "search_clusterings",
    "ClusteringSearchResult",
]

_EPS = 1e-12

# Either one uniform per-tuple CPU transfer cost, or one per stream name.
TransferCosts = Union[float, Mapping[str, float]]


def _transfer_cost_of(costs: TransferCosts, stream: str) -> float:
    if isinstance(costs, Mapping):
        value = float(costs.get(stream, 0.0))
    else:
        value = float(costs)
    if value < 0 or not math.isfinite(value):
        raise ValueError(f"transfer cost for {stream!r} must be finite >= 0")
    return value


def _per_tuple_processing_cost(model: LoadModel, operator: str) -> float:
    """Cheapest per-tuple processing work of an operator.

    Window joins have no constant per-tuple cost; we use their per-output
    -tuple cost, matching how their load enters the linear model.
    """
    op = model.graph.operator(operator)
    try:
        return min(op.cost_of_port(p) for p in range(op.arity))
    except TypeError:
        return op.load_per_output_tuple  # WindowJoin


@dataclass(frozen=True)
class Clustering:
    """A partition of the model's operators into placement units."""

    groups: Tuple[Tuple[str, ...], ...]

    @property
    def num_clusters(self) -> int:
        return len(self.groups)

    def group_of(self, operator: str) -> int:
        for index, group in enumerate(self.groups):
            if operator in group:
                return index
        raise KeyError(f"unknown operator: {operator!r}")

    def validate(self, model: LoadModel) -> None:
        seen = [name for group in self.groups for name in group]
        if sorted(seen) != sorted(model.operator_names):
            raise ValueError(
                "clustering is not a partition of the model's operators"
            )


class ClusteredModel:
    """A load model whose placement units are operator clusters.

    Duck-types the parts of :class:`LoadModel` that :func:`rod_place`
    needs — coefficient rows, column totals, operator naming and graph
    adjacency — with one row per cluster.
    """

    def __init__(self, base: LoadModel, clustering: Clustering) -> None:
        clustering.validate(base)
        self.base = base
        self.clustering = clustering
        self.operator_names = tuple(
            "+".join(group) for group in clustering.groups
        )
        self.coefficients = np.vstack([
            sum(
                (base.coefficients[base.operator_index(name)] for name in group),
                np.zeros(base.num_variables),
            )
            for group in clustering.groups
        ])
        self._index = {name: i for i, name in enumerate(self.operator_names)}
        self._member_cluster = {
            member: i
            for i, group in enumerate(clustering.groups)
            for member in group
        }
        # rod_place consults model.graph for the "connections" policy.
        self.graph = _ClusterGraphView(base, clustering, self._member_cluster,
                                       self.operator_names)

    @property
    def num_variables(self) -> int:
        return self.base.num_variables

    @property
    def num_operators(self) -> int:
        return len(self.operator_names)

    def column_totals(self) -> np.ndarray:
        return self.base.column_totals()

    def operator_norms(self) -> np.ndarray:
        return np.linalg.norm(self.coefficients, axis=1)

    def operator_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown cluster: {name!r}") from None

    def expand(self, clustered: Placement) -> Placement:
        """Map a placement of clusters back to the base model's operators."""
        assignment = tuple(
            clustered.assignment[self._member_cluster[name]]
            for name in self.base.operator_names
        )
        return Placement(
            model=self.base,
            capacities=clustered.capacities,
            assignment=assignment,
            lower_bound=clustered.lower_bound,
        )


class _ClusterGraphView:
    """Adjacency between clusters, derived from the base graph's arcs."""

    def __init__(self, base, clustering, member_cluster, cluster_names):
        self.name = f"{base.graph.name}/clustered"
        self._names = cluster_names
        up: Dict[int, set] = {i: set() for i in range(len(cluster_names))}
        down: Dict[int, set] = {i: set() for i in range(len(cluster_names))}
        for arc in base.graph.arcs():
            a = member_cluster[arc.producer]
            b = member_cluster[arc.consumer]
            if a != b:
                down[a].add(b)
                up[b].add(a)
        self._up = {i: tuple(sorted(v)) for i, v in up.items()}
        self._down = {i: tuple(sorted(v)) for i, v in down.items()}
        self._index = {name: i for i, name in enumerate(cluster_names)}

    def upstream_operators(self, name: str) -> Tuple[str, ...]:
        return tuple(self._names[i] for i in self._up[self._index[name]])

    def downstream_operators(self, name: str) -> Tuple[str, ...]:
        return tuple(self._names[i] for i in self._down[self._index[name]])


def _cluster_weight(row: np.ndarray, totals: np.ndarray) -> float:
    """Largest share of any variable's total load held by a cluster row."""
    safe = np.where(totals > _EPS, totals, 1.0)
    share = np.where(totals > _EPS, row / safe, 0.0)
    return float(share.max()) if share.size else 0.0


def cluster_operators(
    model: LoadModel,
    transfer_costs: TransferCosts,
    threshold: float = 1.0,
    max_weight: Optional[float] = None,
    approach: str = "ratio",
) -> Clustering:
    """Contract expensive arcs into clusters (Section 6.3).

    Parameters
    ----------
    model:
        Load model whose graph is to be clustered.
    transfer_costs:
        Per-tuple CPU cost of shipping a tuple across the network, uniform
        or per stream.
    threshold:
        Arcs with clustering ratio below this are never contracted.
    max_weight:
        Cap on a cluster's largest per-variable load share; defaults to
        1 / (number of variables only known at placement time) — callers
        normally pass ``min_i C_i / C_T``.  ``None`` disables the cap only
        if explicitly passed as ``math.inf``.
    approach:
        ``"ratio"`` (contract largest ratio first) or ``"weight"``
        (contract cheapest combined weight first).
    """
    if approach not in ("ratio", "weight"):
        raise ValueError(f"unknown clustering approach: {approach!r}")
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    totals = model.column_totals()
    cap = max_weight if max_weight is not None else 1.0

    # Union-find over operators.
    parent = {name: name for name in model.operator_names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows = {
        name: model.coefficients[model.operator_index(name)].copy()
        for name in model.operator_names
    }

    arcs = []
    for arc in model.graph.arcs():
        cost = _transfer_cost_of(transfer_costs, arc.stream)
        if cost <= 0:
            continue
        floor = min(
            _per_tuple_processing_cost(model, arc.producer),
            _per_tuple_processing_cost(model, arc.consumer),
        )
        ratio = cost / max(floor, _EPS)
        arcs.append((arc, ratio))

    while True:
        # Candidate contractions: cross-cluster arcs above the threshold
        # whose merged cluster respects the weight cap.
        candidates = []
        for arc, ratio in arcs:
            a, b = find(arc.producer), find(arc.consumer)
            if a == b or ratio < threshold:
                continue
            merged_weight = _cluster_weight(rows[a] + rows[b], totals)
            if merged_weight > cap + _EPS:
                continue
            candidates.append((arc, ratio, a, b, merged_weight))
        if not candidates:
            break
        if approach == "ratio":
            arc, ratio, a, b, _w = max(
                candidates, key=lambda item: (item[1], item[0].stream)
            )
        else:
            arc, ratio, a, b, _w = min(
                candidates, key=lambda item: (item[4], item[0].stream)
            )
        parent[b] = a
        rows[a] = rows[a] + rows[b]

    groups: Dict[str, List[str]] = {}
    for name in model.operator_names:
        groups.setdefault(find(name), []).append(name)
    return Clustering(groups=tuple(tuple(g) for g in groups.values()))


def _row_cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two load-coefficient rows (0 when either is 0)."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na <= _EPS or nb <= _EPS:
        return 0.0
    return float(a @ b) / (na * nb)


def cluster_by_affinity(
    model: LoadModel,
    max_clusters: int,
    max_weight: Optional[float] = None,
) -> Clustering:
    """Partition operators into ``<= max_clusters`` placement units.

    The decomposition step of the hierarchical placer: unlike
    :func:`cluster_operators` (which contracts arcs whose *transfer
    cost* dominates), this groups by **affinity** so the cluster-level
    solve stays small while the units remain good building blocks for
    resilient placement:

    * **communication affinity** — only graph-adjacent clusters merge
      while arcs remain, so each unit is a connected subgraph and
      placing it on one node keeps its internal streams local;
    * **correlation affinity** — among adjacent pairs, prefer merging
      operators whose load-coefficient rows point in *different*
      directions (low cosine similarity).  A cluster built from
      complementary rows loads several variables a little instead of
      one variable a lot, which is exactly the row shape ROD balances
      best (the same reasoning as Section 7.2's correlation baseline,
      applied intra-cluster).

    A merge is skipped when the merged row's largest per-variable load
    share would exceed ``max_weight`` (default: no cap), mirroring
    :func:`cluster_operators` — an over-heavy cluster can never be
    balanced by any downstream placement.  If the graph runs out of
    arcs before reaching ``max_clusters``, remaining clusters merge by
    smallest combined weight regardless of adjacency; if the weight cap
    blocks every remaining merge, the function returns more than
    ``max_clusters`` units rather than emit an unbalanceable one.
    """
    if max_clusters < 1:
        raise ValueError("max_clusters must be >= 1")
    totals = model.column_totals()
    cap = max_weight if max_weight is not None else math.inf

    parent = {name: name for name in model.operator_names}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    rows = {
        name: model.coefficients[model.operator_index(name)].copy()
        for name in model.operator_names
    }
    num_clusters = len(parent)

    # Root-level adjacency, maintained incrementally: a merge touches
    # only the merged cluster's neighborhood, so each round recomputes
    # O(degree) affinities instead of rescanning every arc.
    neighbors: Dict[str, set] = {name: set() for name in model.operator_names}
    for arc in model.graph.arcs():
        if arc.producer != arc.consumer:
            neighbors[arc.producer].add(arc.consumer)
            neighbors[arc.consumer].add(arc.producer)

    def pair_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def affinity(a: str, b: str) -> Optional[float]:
        """Merge desirability, or ``None`` when the weight cap blocks it."""
        if _cluster_weight(rows[a] + rows[b], totals) > cap + _EPS:
            return None
        return -_row_cosine(rows[a], rows[b])

    scores: Dict[Tuple[str, str], Optional[float]] = {}
    for a, nbrs in neighbors.items():
        for b in nbrs:
            key = pair_key(a, b)
            if key not in scores:
                scores[key] = affinity(*key)

    # Phase 1: contract graph arcs, best affinity first.
    while num_clusters > max_clusters and scores:
        best_key: Optional[Tuple[str, str]] = None
        best_aff: Optional[float] = None
        for key, value in scores.items():
            if value is None:
                continue
            if best_aff is None or (value, key) > (best_aff, best_key):
                best_key, best_aff = key, value
        if best_key is None:
            break
        a, b = best_key
        parent[b] = a
        rows[a] = rows[a] + rows[b]
        num_clusters -= 1
        merged_nbrs = neighbors.pop(b)
        kept = neighbors[a]
        for x in merged_nbrs:
            if x == a:
                continue
            neighbors[x].discard(b)
            neighbors[x].add(a)
            kept.add(x)
        kept.discard(a)
        kept.discard(b)
        scores = {
            key: value
            for key, value in scores.items()
            if a not in key and b not in key
        }
        for x in kept:
            scores[pair_key(a, x)] = affinity(*pair_key(a, x))

    # Phase 2: the graph is out of arcs — merge lightest pairs.
    while num_clusters > max_clusters:
        roots = sorted({find(name) for name in model.operator_names})
        candidates = []
        for i, a in enumerate(roots):
            for b in roots[i + 1:]:
                weight = _cluster_weight(rows[a] + rows[b], totals)
                if weight > cap + _EPS:
                    continue
                candidates.append((weight, a, b))
        if not candidates:
            break
        _w, a, b = min(candidates)
        parent[b] = a
        rows[a] = rows[a] + rows[b]
        num_clusters -= 1

    groups: Dict[str, List[str]] = {}
    for name in model.operator_names:
        groups.setdefault(find(name), []).append(name)
    return Clustering(groups=tuple(tuple(g) for g in groups.values()))


def communication_feasible_set(
    placement: Placement,
    transfer_costs: TransferCosts,
) -> FeasibleSet:
    """Feasible set including the CPU overhead of inter-node streams.

    Every operator→operator arc whose endpoints sit on different nodes
    charges its per-tuple transfer cost to *both* endpoints' nodes (send
    and receive work), scaled by the arc stream's rate expressed over the
    model variables.  Column totals stay those of pure processing so the
    returned ratios remain comparable with communication-free ones.
    """
    model = placement.model
    ln = placement.node_coefficients()
    for arc in model.graph.arcs():
        cost = _transfer_cost_of(transfer_costs, arc.stream)
        if cost <= 0:
            continue
        producer_node = placement.node_of(arc.producer)
        consumer_node = placement.node_of(arc.consumer)
        if producer_node == consumer_node:
            continue
        rate_vector = model.stream_rate_vector(arc.stream)
        ln[producer_node] += cost * rate_vector
        ln[consumer_node] += cost * rate_vector
    return FeasibleSet(
        node_coefficients=ln,
        capacities=placement.capacities,
        column_totals=model.column_totals(),
        lower_bound=placement.lower_bound,
    )


@dataclass(frozen=True)
class ClusteringSearchResult:
    """Winner of a clustering-threshold sweep."""

    placement: Placement
    clustering: Clustering
    approach: str
    threshold: float
    plane_distance: float
    comm_plane_distance: float


def search_clusterings(
    model: LoadModel,
    capacities: Sequence[float],
    transfer_costs: TransferCosts,
    thresholds: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    approaches: Sequence[str] = ("ratio", "weight"),
    weight_cap_multipliers: Sequence[float] = (1.0, 1.5, 2.0),
    lower_bound: Optional[Sequence[float]] = None,
) -> ClusteringSearchResult:
    """Sweep clustering plans and keep the best ROD placement.

    Generates a clustering per (approach, threshold, weight cap), places
    each with ROD, and returns the plan with the largest *communication-
    adjusted* plane distance, as Section 6.3 prescribes ("generate a small
    number of clustering plans ... systematically varying the threshold
    values ... and pick the one with the maximum plane distance").  Weight
    caps are multiples of the smallest node's capacity share.
    """
    capacities = geometry.validate_capacities(capacities)
    base_cap = float(capacities.min() / capacities.sum())
    best: Optional[ClusteringSearchResult] = None
    for approach in approaches:
        for threshold in thresholds:
            for multiplier in weight_cap_multipliers:
                clustering = cluster_operators(
                    model,
                    transfer_costs,
                    threshold=threshold,
                    max_weight=base_cap * multiplier,
                    approach=approach,
                )
                clustered_model = ClusteredModel(model, clustering)
                placement = clustered_model.expand(
                    rod_place(
                        clustered_model, capacities, lower_bound=lower_bound
                    )
                )
                comm_distance = communication_feasible_set(
                    placement, transfer_costs
                ).plane_distance()
                result = ClusteringSearchResult(
                    placement=placement,
                    clustering=clustering,
                    approach=approach,
                    threshold=threshold,
                    plane_distance=placement.plane_distance(),
                    comm_plane_distance=comm_distance,
                )
                if (
                    best is None
                    or result.comm_plane_distance > best.comm_plane_distance
                ):
                    best = result
    assert best is not None
    return best
