"""Operator placement plans (the allocation matrix ``A`` of Section 2.3).

A :class:`Placement` binds a load model to a cluster: it records which
node runs each operator, derives ``L^n = A L^o`` and exposes the metrics
the paper evaluates plans by (weight matrix, plane distance, feasible-set
volume ratio).  Placements are immutable; placers return new ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from . import geometry
from .feasible_set import FeasibleSet
from .load_model import LoadModel

__all__ = ["Placement", "placement_from_mapping", "diff_placements"]


@dataclass(frozen=True)
class Placement:
    """An assignment of every operator of a load model to a cluster node.

    Attributes
    ----------
    model:
        The linear load model being placed.
    capacities:
        Per-node CPU capacities ``C`` (CPU seconds per second).
    assignment:
        ``assignment[j]`` is the node index of ``model.operator_names[j]``.
    lower_bound:
        Optional workload floor ``B`` in variable space (Section 6.1),
        carried through to the derived feasible set.
    """

    model: LoadModel
    capacities: np.ndarray
    assignment: Tuple[int, ...]
    lower_bound: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        capacities = geometry.validate_capacities(self.capacities)
        assignment = tuple(int(i) for i in self.assignment)
        if len(assignment) != self.model.num_operators:
            raise ValueError(
                f"assignment covers {len(assignment)} operators but the "
                f"model has {self.model.num_operators}"
            )
        n = capacities.shape[0]
        for j, node in enumerate(assignment):
            if not 0 <= node < n:
                raise ValueError(
                    f"operator {self.model.operator_names[j]!r} assigned to "
                    f"node {node}, but the cluster has {n} node(s)"
                )
        bound = self.lower_bound
        if bound is not None:
            bound = np.asarray(bound, dtype=float)
        object.__setattr__(self, "capacities", capacities)
        object.__setattr__(self, "assignment", assignment)
        object.__setattr__(self, "lower_bound", bound)

    # ------------------------------------------------------------ structure

    @property
    def num_nodes(self) -> int:
        return self.capacities.shape[0]

    def node_of(self, operator_name: str) -> int:
        """Node index hosting the named operator."""
        return self.assignment[self.model.operator_index(operator_name)]

    def operators_on(self, node: int) -> Tuple[str, ...]:
        """Names of operators hosted by ``node``, in topological order."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range")
        return tuple(
            name
            for name, assigned in zip(self.model.operator_names, self.assignment)
            if assigned == node
        )

    def operator_counts(self) -> np.ndarray:
        """Number of operators per node."""
        counts = np.zeros(self.num_nodes, dtype=int)
        for node in self.assignment:
            counts[node] += 1
        return counts

    def allocation_matrix(self) -> np.ndarray:
        """``A = {a_ij}`` with ``a_ij = 1`` iff operator ``j`` is on node ``i``."""
        a = np.zeros((self.num_nodes, self.model.num_operators))
        for j, node in enumerate(self.assignment):
            a[node, j] = 1.0
        return a

    def node_coefficients(self) -> np.ndarray:
        """``L^n = A L^o`` (n x d).

        Accumulated row-wise in ``O(m d)`` — never via the dense
        ``(n x m) @ (m x d)`` allocation-matrix product — and memoized on
        the instance, so repeated metric queries (weights, plane
        distance, volume ratio) share one materialization.  Returns a
        copy; the cache itself is never handed out mutable.
        """
        cached = self.__dict__.get("_node_coefficients")
        if cached is None:
            cached = np.zeros((self.num_nodes, self.model.num_variables))
            np.add.at(
                cached, np.fromiter(self.assignment, dtype=np.intp,
                                    count=len(self.assignment)),
                self.model.coefficients,
            )
            object.__setattr__(self, "_node_coefficients", cached)
        return cached.copy()

    def with_move(self, operator_index: int, node: int) -> "Placement":
        """Copy-on-write candidate plan: one operator moved to ``node``.

        The returned placement shares the model and capacities and gets
        its ``L^n`` cache seeded by *delta*: copy the current matrix and
        patch the source and target rows — ``O(n d)`` per candidate
        instead of re-accumulating all ``m`` operator rows.  This is the
        constructor placers use to score candidate moves.
        """
        if not 0 <= operator_index < self.model.num_operators:
            raise IndexError(f"operator index {operator_index} out of range")
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        source = self.assignment[operator_index]
        assignment = list(self.assignment)
        assignment[operator_index] = node
        moved = Placement(
            model=self.model,
            capacities=self.capacities,
            assignment=tuple(assignment),
            lower_bound=self.lower_bound,
        )
        cached = self.__dict__.get("_node_coefficients")
        if cached is not None and node != source:
            ln = cached.copy()
            row = self.model.coefficients[operator_index]
            ln[source] = ln[source] - row
            ln[node] = ln[node] + row
            object.__setattr__(moved, "_node_coefficients", ln)
        return moved

    def inter_node_arcs(self) -> int:
        """Operator→operator arcs whose endpoints sit on different nodes.

        The communication-aware extension (Section 6.3) minimizes these.
        """
        graph = self.model.graph
        return sum(
            1
            for arc in graph.arcs()
            if self.node_of(arc.producer) != self.node_of(arc.consumer)
        )

    # -------------------------------------------------------------- metrics

    def feasible_set(self) -> FeasibleSet:
        """The feasible set induced by this placement."""
        return FeasibleSet(
            node_coefficients=self.node_coefficients(),
            capacities=self.capacities,
            column_totals=self.model.column_totals(),
            lower_bound=self.lower_bound,
        )

    def weights(self) -> np.ndarray:
        return self.feasible_set().weights()

    def plane_distance(self) -> float:
        """MMPD metric of this plan (larger is better)."""
        return self.feasible_set().plane_distance()

    def volume_ratio(
        self,
        samples: int = 4096,
        seed: Optional[int] = None,
        target_se: Optional[float] = None,
        jobs: int = 1,
    ) -> float:
        """QMC feasible-set size relative to the ideal set.

        ``target_se`` and ``jobs`` pass through to
        :meth:`FeasibleSet.volume_ratio` (early termination / parallel
        sample evaluation; neither changes the converged result).
        """
        return self.feasible_set().volume_ratio(
            samples=samples, seed=seed, target_se=target_se, jobs=jobs
        )

    # -------------------------------------------------------- serialization

    def to_mapping(self) -> Dict[str, int]:
        """``{operator name: node index}`` view of the assignment."""
        return {
            name: node
            for name, node in zip(self.model.operator_names, self.assignment)
        }

    def to_document(self) -> Dict[str, object]:
        """Plain-dict plan document (what ``to_json`` serializes).

        Includes the derived ``L^n`` so static checkers
        (:func:`repro.check.check_plan_document`) can detect plans that
        went stale relative to their graph: a stored ``node_coefficients``
        that disagrees with the recomputed ``A L^o`` is diagnosed before
        the plan is ever simulated.
        """
        return {
            "graph": self.model.graph.name,
            "capacities": self.capacities.tolist(),
            "assignment": self.to_mapping(),
            "node_coefficients": self.node_coefficients().tolist(),
        }

    def to_json(self) -> str:
        """JSON document describing the plan (for ops tooling / debugging)."""
        return json.dumps(self.to_document(), indent=2, sort_keys=True)

    def describe(self) -> str:
        """Human-readable per-node summary."""
        lines = [f"placement of {self.model.graph.name!r} on "
                 f"{self.num_nodes} node(s):"]
        ln = self.node_coefficients()
        for node in range(self.num_nodes):
            ops = ", ".join(self.operators_on(node)) or "(empty)"
            lines.append(
                f"  node {node} (C={self.capacities[node]:g}, "
                f"coeffs={np.round(ln[node], 6).tolist()}): {ops}"
            )
        lines.append(f"  plane distance: {self.plane_distance():.4f}")
        return "\n".join(lines)


def diff_placements(before: Placement, after: Placement) -> Dict[str, Tuple[int, int]]:
    """Operators whose node changed between two plans of the same graph.

    Returns ``{operator: (old node, new node)}``.  Operators present in
    only one plan (e.g. growth via ``rod_extend``) are ignored — the diff
    reports *moves*, which are exactly what a static deployment must
    avoid and what a migration controller pays for.
    """
    before_map = before.to_mapping()
    after_map = after.to_mapping()
    return {
        name: (before_map[name], after_map[name])
        for name in before_map
        if name in after_map and before_map[name] != after_map[name]
    }


def placement_from_mapping(
    model: LoadModel,
    capacities: Sequence[float],
    mapping: Mapping[str, int],
    lower_bound: Optional[Sequence[float]] = None,
) -> Placement:
    """Build a :class:`Placement` from an ``{operator: node}`` mapping."""
    missing = [name for name in model.operator_names if name not in mapping]
    if missing:
        raise ValueError(f"mapping is missing operators: {missing}")
    extra = [name for name in mapping if name not in model.operator_names]
    if extra:
        raise ValueError(f"mapping names unknown operators: {extra}")
    assignment = tuple(mapping[name] for name in model.operator_names)
    return Placement(
        model=model,
        capacities=np.asarray(capacities, dtype=float),
        assignment=assignment,
        lower_bound=None if lower_bound is None else np.asarray(lower_bound, float),
    )
