"""Resilience analysis of placements — the questions operators ask.

The feasible set is the formal object; an operator on call wants its
practical projections:

* *How much can the whole workload grow before something saturates?*
  (:func:`headroom` — scale along the current mix)
* *How much can stream k alone burst?* (:func:`axis_headroom`)
* *Which node goes down first, and which streams drive it?*
  (:func:`bottleneck_report`)

All answers are closed-form in the linear model: node ``i`` saturates
along direction ``R`` at scale ``C_i / (L^n_i · R)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .plans import Placement

__all__ = [
    "headroom",
    "axis_headroom",
    "BottleneckReport",
    "bottleneck_report",
    "resilience_summary",
]


def _rates_vector(placement: Placement, rates: Sequence[float]) -> np.ndarray:
    r = np.asarray(rates, dtype=float)
    d = placement.model.num_variables
    if r.shape != (d,):
        raise ValueError(f"expected {d} rates, got shape {r.shape}")
    if np.any(r < 0):
        raise ValueError("rates must be >= 0")
    return r


def headroom(placement: Placement, rates: Sequence[float]) -> float:
    """Largest factor the whole rate vector can scale by and stay feasible.

    ``min_i C_i / (L^n_i · R)``; ``inf`` if the point generates no load.
    A value below 1 means the system is already infeasible at ``R``.
    """
    r = _rates_vector(placement, rates)
    loads = placement.node_coefficients() @ r
    capacities = placement.capacities
    with np.errstate(divide="ignore"):
        scales = np.where(loads > 1e-15, capacities / loads, math.inf)
    return float(scales.min())


def axis_headroom(
    placement: Placement,
    rates: Sequence[float],
    axis: int,
) -> float:
    """How much additional rate stream ``axis`` alone can absorb at ``R``.

    Returns the largest ``delta >= 0`` such that ``R + delta * e_axis``
    stays feasible (``inf`` if no node loads that variable; ``0`` if some
    node is already saturated).  This is the per-axis burst tolerance —
    MMAD's axis distances translated back to physical rates.
    """
    r = _rates_vector(placement, rates)
    d = placement.model.num_variables
    if not 0 <= axis < d:
        raise IndexError(f"axis {axis} out of range for d={d}")
    ln = placement.node_coefficients()
    slack = placement.capacities - ln @ r
    if np.any(slack < 0):
        return 0.0
    column = ln[:, axis]
    with np.errstate(divide="ignore"):
        deltas = np.where(column > 1e-15, slack / column, math.inf)
    return float(max(deltas.min(), 0.0))


@dataclass(frozen=True)
class BottleneckReport:
    """Which node saturates first along the current mix, and why."""

    node: int
    utilization: float
    saturation_scale: float
    #: (variable name, fraction of the node's load it contributes).
    dominant_variables: Tuple[Tuple[str, float], ...]


def bottleneck_report(
    placement: Placement,
    rates: Sequence[float],
    top: int = 3,
) -> BottleneckReport:
    """Identify the first node to saturate and its dominant load sources."""
    if top < 1:
        raise ValueError("top must be >= 1")
    r = _rates_vector(placement, rates)
    ln = placement.node_coefficients()
    loads = ln @ r
    utilizations = loads / placement.capacities
    node = int(np.argmax(utilizations))
    contributions = ln[node] * r
    total = contributions.sum()
    names = placement.model.variables
    ranked = sorted(
        range(len(names)), key=lambda k: -contributions[k]
    )[:top]
    dominant = tuple(
        (names[k], float(contributions[k] / total) if total > 0 else 0.0)
        for k in ranked
        if contributions[k] > 0
    )
    scale = (
        float(placement.capacities[node] / loads[node])
        if loads[node] > 1e-15
        else math.inf
    )
    return BottleneckReport(
        node=node,
        utilization=float(utilizations[node]),
        saturation_scale=scale,
        dominant_variables=dominant,
    )


def resilience_summary(
    placement: Placement,
    rates: Optional[Sequence[float]] = None,
) -> str:
    """Multi-line operational summary of a placement's burst tolerance."""
    model = placement.model
    if rates is None:
        # Default probe point: uniform mix at 50% of total capacity.
        totals = model.column_totals()
        safe = np.where(totals > 1e-15, totals, np.inf)
        rates = 0.5 * placement.capacities.sum() / (safe * model.num_variables)
    r = _rates_vector(placement, rates)
    report = bottleneck_report(placement, r)
    lines: List[str] = []
    lines.append(
        f"at rates {np.round(r, 4).tolist()}: bottleneck node "
        f"{report.node} at {report.utilization:.0%} utilization"
    )
    lines.append(
        f"  uniform growth headroom: {headroom(placement, r):.2f}x"
    )
    for k, name in enumerate(model.variables):
        extra = axis_headroom(placement, r, k)
        if math.isinf(extra):
            lines.append(f"  {name}: unconstrained (carries no load)")
        else:
            base = r[k]
            factor = (base + extra) / base if base > 0 else math.inf
            lines.append(
                f"  {name}: can burst by +{extra:.4g} tuples/s "
                f"({factor:.2f}x) before saturation"
            )
    if report.dominant_variables:
        drivers = ", ".join(
            f"{name} ({share:.0%})"
            for name, share in report.dominant_variables
        )
        lines.append(f"  bottleneck driven by: {drivers}")
    return "\n".join(lines)
