"""Per-operator runtime behaviour inside the simulator.

A runtime turns an arriving batch of tuples into (CPU work, output
tuples).  Selectivities are applied with fractional carry so long-run
output counts match the analytic rates exactly; window joins keep a real
sliding window of recent arrival counts per input port, so their
quadratic load emerges from simulation rather than being asserted.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ..graphs.operators import (
    LinearOperator,
    Operator,
    VariableSelectivityOp,
    WindowJoin,
)

__all__ = ["OperatorRuntime", "make_runtime"]


class _FractionalCarry:
    """Accumulates fractional tuples so floor() errors never drift."""

    def __init__(self) -> None:
        self._carry = 0.0

    def emit(self, amount: float) -> int:
        self._carry += amount
        # The epsilon absorbs accumulated binary-fraction error (e.g.
        # 1000 x 0.3 summing to 299.9999...) without ever over-emitting
        # noticeably.
        whole = int(self._carry + 1e-9)
        self._carry -= whole
        return whole


class OperatorRuntime:
    """Base runtime: subclasses define :meth:`process`."""

    def __init__(self, operator: Operator) -> None:
        self.operator = operator

    def process(self, now: float, port: int, count: int) -> Tuple[float, int]:
        """Consume ``count`` tuples on ``port`` at time ``now``.

        Returns ``(cpu_seconds_of_work, output_tuple_count)`` where the CPU
        work is expressed for a unit-capacity node (the engine divides by
        the node's capacity).
        """
        raise NotImplementedError


class LinearRuntime(OperatorRuntime):
    """Constant per-tuple cost and selectivity per port."""

    def __init__(self, operator: LinearOperator) -> None:
        super().__init__(operator)
        self._carries = [_FractionalCarry() for _ in range(operator.arity)]

    def process(self, now: float, port: int, count: int) -> Tuple[float, int]:
        op = self.operator
        work = op.costs[port] * count
        out = self._carries[port].emit(op.selectivities[port] * count)
        return work, out


class VariableSelectivityRuntime(OperatorRuntime):
    """Linear cost; output drawn from the nominal selectivity."""

    def __init__(self, operator: VariableSelectivityOp) -> None:
        super().__init__(operator)
        self._carry = _FractionalCarry()

    def process(self, now: float, port: int, count: int) -> Tuple[float, int]:
        op = self.operator
        work = op.cost * count
        out = self._carry.emit(op.nominal_selectivity * count)
        return work, out


class WindowJoinRuntime(OperatorRuntime):
    """Sliding-window join over both input ports.

    Matches pairs whose timestamps differ by at most ``window / 2`` (the
    model's ``window`` is the *total* temporal extent).  A batch arriving
    on one port pairs with the opposite port's tuples still inside the
    half-window, and both ports probe each other symmetrically, so the
    steady-state pairing rate is ``2 * (window/2) * r_u * r_v =
    window * r_u * r_v`` — exactly the Section 6.2 load model.  The
    quadratic load thus *emerges* from simulation rather than being
    asserted.  Accuracy requires the simulation step to be well below the
    half-window (the engine enforces ``step <= window / 2``).
    """

    def __init__(self, operator: WindowJoin) -> None:
        super().__init__(operator)
        self._windows: List[Deque[Tuple[float, int]]] = [deque(), deque()]
        self._carry = _FractionalCarry()

    def _expire(self, now: float, port: int) -> None:
        window = self._windows[port]
        horizon = now - self.operator.window / 2.0
        while window and window[0][0] <= horizon:
            window.popleft()

    def window_population(self, now: float, port: int) -> int:
        self._expire(now, port)
        return sum(count for _, count in self._windows[port])

    def process(self, now: float, port: int, count: int) -> Tuple[float, int]:
        if port not in (0, 1):
            raise IndexError(f"join has ports 0 and 1, got {port}")
        opposite = 1 - port
        pairs = count * self.window_population(now, opposite)
        self._expire(now, port)
        self._windows[port].append((now, count))
        work = self.operator.cost_per_pair * pairs
        out = self._carry.emit(self.operator.selectivity * pairs)
        return work, out


def make_runtime(operator: Operator) -> OperatorRuntime:
    """Instantiate the right runtime for an operator."""
    if isinstance(operator, WindowJoin):
        return WindowJoinRuntime(operator)
    if isinstance(operator, VariableSelectivityOp):
        return VariableSelectivityRuntime(operator)
    if isinstance(operator, LinearOperator):
        return LinearRuntime(operator)
    raise TypeError(f"no runtime for operator type {type(operator).__name__}")
