"""Per-node batch scheduling disciplines.

Each simulated node serves one batch at a time; when it frees up, the
scheduling policy picks the next pending batch:

* ``"fifo"`` — global arrival order (the classic single-queue node);
* ``"round_robin"`` — one batch per operator in rotation, the
  Aurora/Borealis-style operator scheduler that bounds per-operator
  starvation;
* ``"longest_queue"`` — serve the operator with the most queued tuples,
  which drains hotspots fastest at the cost of starving light operators
  during bursts.

Scheduling changes *latency distribution*, never feasibility — total
work is policy-independent — which is exactly what the scheduling
ablation benchmark demonstrates.

Migration stalls are modelled as high-priority entries that preempt the
queue (the node is busy serializing/installing operator state).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

__all__ = ["POLICIES", "SchedulerQueue", "Stall"]

POLICIES = ("fifo", "round_robin", "longest_queue")


@dataclass(frozen=True)
class Stall:
    """A non-work queue entry: the node pauses for ``duration`` seconds.

    ``decision`` carries the decision-audit id of the migration that
    caused the pause (-1 when tracing is off), so ``node.stall`` trace
    events attribute reconfiguration time to the controller decision.
    """

    duration: float
    decision: int = -1


class SchedulerQueue:
    """Pending batches of one node under a scheduling policy."""

    def __init__(self, policy: str = "fifo") -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; "
                f"expected one of {POLICIES}"
            )
        self.policy = policy
        self._stalls: Deque[Stall] = deque()
        # fifo: one global deque of batches.
        self._fifo: Deque[object] = deque()
        # round_robin / longest_queue: per-operator FIFO deques; the
        # OrderedDict's order doubles as the rotation order.
        self._per_op: "OrderedDict[str, Deque[object]]" = OrderedDict()
        self._size = 0

    # ---------------------------------------------------------------- push

    def push(self, batch) -> None:
        """Enqueue a batch (``batch.operator`` names its operator)."""
        self._size += 1
        if self.policy == "fifo":
            self._fifo.append(batch)
            return
        queue = self._per_op.get(batch.operator)
        if queue is None:
            queue = deque()
            self._per_op[batch.operator] = queue
        queue.append(batch)

    def push_stall(self, duration: float, decision: int = -1) -> None:
        """Enqueue a migration stall, served before any batch."""
        if duration < 0:
            raise ValueError("stall duration must be >= 0")
        self._stalls.append(Stall(duration, decision))

    # ----------------------------------------------------------------- pop

    def pop(self):
        """Next entry to serve: a :class:`Stall` or a batch."""
        if self._stalls:
            return self._stalls.popleft()
        if self._size == 0:
            raise IndexError("pop from an empty scheduler queue")
        self._size -= 1
        if self.policy == "fifo":
            return self._fifo.popleft()
        if self.policy == "round_robin":
            name, queue = next(iter(self._per_op.items()))
            batch = queue.popleft()
            # Rotate: the served operator goes to the back.
            self._per_op.move_to_end(name)
            if not queue:
                del self._per_op[name]
            return batch
        # longest_queue: operator with the most queued tuples.
        name = max(
            self._per_op,
            key=lambda n: sum(b.count for b in self._per_op[n]),
        )
        queue = self._per_op[name]
        batch = queue.popleft()
        if not queue:
            del self._per_op[name]
        return batch

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._size + len(self._stalls)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def queued_tuples(self, operator: Optional[str] = None) -> int:
        """Tuples pending, for one operator or in total."""
        if self.policy == "fifo":
            batches = [
                b for b in self._fifo
                if operator is None or b.operator == operator
            ]
            return sum(b.count for b in batches)
        if operator is not None:
            return sum(
                b.count for b in self._per_op.get(operator, ())
            )
        return sum(
            b.count for queue in self._per_op.values() for b in queue
        )

    def take_operator(self, operator: str) -> Tuple[object, ...]:
        """Remove and return all pending batches of one operator.

        Used when a migration moves an operator: its queued work follows
        it to the destination node.
        """
        if self.policy == "fifo":
            taken = tuple(
                b for b in self._fifo if b.operator == operator
            )
            kept = [b for b in self._fifo if b.operator != operator]
            self._fifo = deque(kept)
            self._size = len(kept)
            return taken
        queue = self._per_op.pop(operator, None)
        if queue is None:
            return ()
        self._size -= len(queue)
        return tuple(queue)
