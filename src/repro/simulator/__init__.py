"""Discrete-event distributed stream-processing simulator."""

from .engine import Simulator
from .feasibility import FeasibilityProbe, empirical_feasible_fraction
from .metrics import LatencyStats, SimulationResult
from .runtime import OperatorRuntime, make_runtime

__all__ = [
    "FeasibilityProbe",
    "LatencyStats",
    "OperatorRuntime",
    "SimulationResult",
    "Simulator",
    "empirical_feasible_fraction",
    "make_runtime",
]
