"""Discrete-event simulator for distributed stream processing.

The Borealis stand-in: a cluster of single-CPU nodes, each running the
operators a :class:`~repro.core.plans.Placement` assigned to it.  Tuples
arrive in per-step batches from the input streams, flow through operator
runtimes (costs, selectivities, join windows), and cross the network —
charging CPU on both endpoints — whenever an arc spans two nodes.

Each node serves one batch at a time at its capacity (CPU-seconds of
operator work per wall-clock second); pending batches wait in a
per-node queue whose service order is set by a scheduling policy
(:mod:`repro.simulator.scheduling`).  The engine records per-node
utilization and backlog plus end-to-end tuple latency at every sink,
which is everything Section 7's prototype experiments measure.

An optional :class:`~repro.dynamics.controller.MigrationController` turns
the static deployment into a reactive one: the engine polls it on a fixed
period with each node's recent utilization, and applies the migrations it
returns — stalling both endpoint nodes for the state-dependent pause (as
the paper's prototype measurements describe, Section 1) and moving the
operator's queued batches to the destination.

An optional :class:`~repro.faults.FaultSchedule` injects timed system
faults — node crashes/recoveries, capacity brownouts, per-operator
slowdowns, input-rate spikes — at event-queue priority ahead of control
polls at the same timestamp.  A crashed node finishes its in-flight
batch (fail-stop at batch granularity) and then serves nothing until it
recovers; its queued work strands unless the attached controller
implements the failover hooks (``on_node_failed`` /
``on_node_recovered``, see :class:`repro.dynamics.FailoverController`),
in which case displaced operators and their queued batches move to
surviving nodes immediately.  Fault application is deterministic: the
same schedule and seed always produce bit-identical traces and results.

The engine is instrumented for :mod:`repro.obs`: pass a ``tracer`` to
stream typed events (``sim.start``/``sim.end``, batch enqueue/service,
node busy/idle transitions, migration decisions, causal span lineage
``span.open``/``span.close`` linking every batch to the source
injection it descends from — see :mod:`repro.obs.spans`) and a
``metrics`` registry to collect run counters and latency quantiles.
Both default to disabled, and every hot-path emit is guarded on
``tracer.enabled``, so an uninstrumented run allocates no event
objects at all.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.plans import Placement
from ..dynamics.elasticity import Repartition
from ..dynamics.failover import residual_volume_ratio
from ..faults.schedule import FaultEvent, FaultSchedule
from ..graphs.operators import Filter
from ..obs.decisions import DecisionRecord, DecisionTelemetry
from ..obs.drift import DriftDetection, DriftMonitor, record_drift_metrics
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanEmitter
from ..obs.trace import NULL_TRACER, Tracer
from ..workload.arrivals import ArrivalProcess
from .metrics import LatencyStats, OperatorStats, SimulationResult
from .runtime import OperatorRuntime, make_runtime
from .scheduling import SchedulerQueue, Stall

__all__ = ["Simulator"]

TransferCosts = Union[float, Mapping[str, float]]

# Event priorities at equal timestamps: faults first (the system changes
# before anything reacts to it), then controls (migrations take effect
# before new work lands), then completions, then arrivals.
# Drift detections share the fault priority so a ``drift.detected``
# event always lands before any same-instant control reaction.
_FAULT, _CONTROL, _COMPLETION, _ARRIVAL = 0, 1, 2, 3

#: QMC sample count for the per-poll feasible-volume drift signal —
#: small on purpose: it runs once per control period, not per batch.
_DRIFT_VOLUME_SAMPLES = 128


def _transfer_cost(costs: TransferCosts, stream: str) -> float:
    if isinstance(costs, Mapping):
        value = float(costs.get(stream, 0.0))
    else:
        value = float(costs)
    if value < 0 or not math.isfinite(value):
        raise ValueError(f"transfer cost for {stream!r} must be finite >= 0")
    return value


@dataclass(frozen=True)
class _Batch:
    """A batch of identical-age tuples bound for one operator port."""

    birth: float        # when the originating source tuples entered
    arrival: float      # when this batch reached its current operator
    operator: str
    port: int
    count: int
    extra_work: float = 0.0  # receive-side network CPU, unit capacity
    span: int = -1      # causal span id; -1 when tracing is disabled


@dataclass(frozen=True)
class _Completion:
    """A node finishing its current queue entry."""

    node: int
    batch: Optional[_Batch]          # None for stalls
    out_count: int = 0
    deliveries: Tuple[Tuple[str, int, float], ...] = ()
    work: float = 0.0
    start: float = 0.0               # when the node began serving it
    decision: int = -1               # stall-causing decision id (stalls)


@dataclass(frozen=True)
class _FaultRevert:
    """A windowed fault (degrade/slowdown) expiring."""

    event: FaultEvent


class Simulator:
    """Simulate a placed query graph under a rate workload."""

    def __init__(
        self,
        placement: Placement,
        step_seconds: float = 0.1,
        transfer_costs: TransferCosts = 0.0,
        arrival_kind: str = "deterministic",
        seed: Optional[int] = None,
        controller: Optional[object] = None,
        scheduling: str = "fifo",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> None:
        """``controller``, if given, is a ``MigrationController`` polled
        every ``controller.period`` seconds to move operators at run
        time; ``scheduling`` picks the per-node service discipline.
        ``tracer`` streams structured run events (disabled by default);
        ``metrics`` collects run counters/gauges after the event loop.
        ``faults`` is a :class:`~repro.faults.FaultSchedule` of timed
        system faults to inject (validated eagerly against the cluster
        and graph shape)."""
        if step_seconds <= 0:
            raise ValueError("step_seconds must be > 0")
        self.placement = placement
        self.graph = placement.model.graph
        for op in self.graph.operators():
            window = getattr(op, "window", None)
            if window is not None and step_seconds > window / 2.0:
                raise ValueError(
                    f"{op.name}: simulation step {step_seconds:g}s exceeds "
                    f"the join half-window {window / 2.0:g}s; batch "
                    "arrivals would misstate the pairing load — use "
                    "step_seconds well below window/2 (window/4 or finer "
                    "recommended)"
                )
        self.step_seconds = float(step_seconds)
        self.transfer_costs = transfer_costs
        self.arrival_kind = arrival_kind
        self.seed = seed
        self.controller = controller
        self.scheduling = scheduling
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.faults = faults
        if faults is not None:
            faults.validate(
                placement.num_nodes, self.graph.operator_names
            )
        SchedulerQueue(scheduling)  # validate the policy eagerly
        # (consumer operator, port) pairs per stream, precomputed.
        self._routes: Dict[str, List[Tuple[str, int]]] = {}
        for stream in self.graph.streams():
            routes = []
            for consumer in self.graph.consumers_of(stream.name):
                for port, s in enumerate(self.graph.inputs_of(consumer)):
                    if s == stream.name:
                        routes.append((consumer, port))
            self._routes[stream.name] = routes

    # ------------------------------------------------------------------ run

    def run(
        self,
        rate_series: Optional[np.ndarray] = None,
        rates: Optional[Sequence[float]] = None,
        duration: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate either a rate time series or a constant rate point.

        ``rate_series`` has shape ``(steps, num_inputs)``, one row per
        ``step_seconds``.  Alternatively pass constant ``rates`` plus a
        ``duration`` in seconds.  Arrivals stop at the horizon; processing
        continues until every queued tuple drains, so latency of
        backlogged tuples is fully observed.
        """
        series = self._resolve_series(rate_series, rates, duration)
        if self.faults is not None:
            series = self.faults.apply_rate_events(
                series, self.step_seconds
            )
        steps = series.shape[0]
        horizon = steps * self.step_seconds
        n = self.placement.num_nodes
        # ``capacities`` is the live vector (brownout faults rewrite it
        # mid-run); ``nominal`` reports end-of-run utilization.
        nominal = self.placement.capacities
        capacities = nominal.copy()

        # Hoisted observability state: `tracing` is the single hot-path
        # guard — when False, no trace call runs and no event object is
        # ever allocated.
        tracer = self.tracer
        tracing = tracer.enabled
        # Span ids link every batch to its causal parent; allocation and
        # emission happen only under the `tracing` guard, so a disabled
        # run leaves every batch at span=-1 and never calls the emitter.
        spans = SpanEmitter(tracer)
        # Decision audit + drift detection exist only while tracing: the
        # telemetry collector is attached to the controller here (and
        # detached after the loop), so the untraced path never allocates
        # a decision record.
        telemetry: Optional[DecisionTelemetry] = None
        drift_monitor: Optional[DriftMonitor] = None
        decision_seq = itertools.count(1)
        decision_counts: Dict[str, int] = {}
        if tracing:
            drift_monitor = DriftMonitor()
            if self.controller is not None and hasattr(
                self.controller, "telemetry"
            ):
                telemetry = DecisionTelemetry()
                self.controller.telemetry = telemetry
        # A controller-attached SloWatcher is fed every sink latency
        # sample regardless of tracing (labelling decisions as
        # SLO-triggered must not change what the controller does).
        slo_watcher = getattr(self.controller, "slo_watcher", None)
        if tracing:
            tracer.emit(
                "sim.start",
                t=0.0,
                nodes=n,
                operators=len(self.graph.operator_names),
                step_seconds=self.step_seconds,
                horizon=horizon,
                capacities=[float(c) for c in capacities],
                scheduling=self.scheduling,
                arrival_kind=self.arrival_kind,
            )

        runtimes: Dict[str, OperatorRuntime] = {
            op.name: make_runtime(op) for op in self.graph.operators()
        }
        queues = [SchedulerQueue(self.scheduling) for _ in range(n)]
        busy = [False] * n
        last_free = np.zeros(n)
        node_work = np.zeros(n)
        timeline = np.zeros((steps, n))

        latency = LatencyStats()
        sink_latency: Dict[str, LatencyStats] = {}
        operator_stats: Dict[str, OperatorStats] = {
            name: OperatorStats() for name in self.graph.operator_names
        }
        tuples_in = 0
        tuples_out = 0
        migrations: List[object] = []
        # Repartitions are kept apart from migrations: they stall nodes
        # like a migration but never change the assignment, and the
        # migration-derived metrics (count, total pause) must not see
        # them.
        repartitions: List[Repartition] = []

        # Fault state: crashed nodes serve nothing; ``slow`` multiplies
        # per-batch operator cost during slowdown windows.
        failed = [False] * n
        slow: Dict[str, float] = {}
        applied_faults: List[FaultEvent] = []

        # Mutable routing table: starts at the static placement; a
        # controller may rewrite it mid-run.
        assignment: Dict[str, int] = {
            name: self.placement.node_of(name)
            for name in self.graph.operator_names
        }

        sequence = itertools.count()
        events: List[Tuple[float, int, int, object]] = []

        def push_event(time: float, priority: int, payload: object) -> None:
            heapq.heappush(events, (time, priority, next(sequence), payload))

        def start_service(node: int, now: float) -> None:
            """Begin serving the next queue entry on an idle node."""
            entry = queues[node].pop()
            busy[node] = True
            if isinstance(entry, Stall):
                work = entry.duration * capacities[node]
                push_event(
                    now + entry.duration,
                    _COMPLETION,
                    _Completion(node=node, batch=None, work=work,
                                start=now, decision=entry.decision),
                )
                return
            batch: _Batch = entry
            runtime = runtimes[batch.operator]
            work, out_count = runtime.process(
                batch.arrival, batch.port, batch.count
            )
            slow_factor = slow.get(batch.operator)
            if slow_factor is not None:
                work *= slow_factor
            stats = operator_stats[batch.operator]
            stats.tuples_in += batch.count
            stats.tuples_out += out_count
            stats.work_seconds += work
            work += batch.extra_work

            out_stream = self.graph.output_of(batch.operator).name
            send_work = 0.0
            deliveries: List[Tuple[str, int, float]] = []
            if out_count > 0:
                for consumer, port in self._routes[out_stream]:
                    recv = 0.0
                    if assignment[consumer] != node:
                        per_tuple = _transfer_cost(
                            self.transfer_costs, out_stream
                        )
                        send_work += per_tuple * out_count
                        recv = per_tuple * out_count
                    deliveries.append((consumer, port, recv))
            total_work = work + send_work
            push_event(
                now + total_work / capacities[node],
                _COMPLETION,
                _Completion(
                    node=node,
                    batch=batch,
                    out_count=out_count,
                    deliveries=tuple(deliveries),
                    work=total_work,
                    start=now,
                ),
            )

        def enqueue(batch: _Batch) -> None:
            node = assignment[batch.operator]
            queues[node].push(batch)
            if tracing:
                tracer.emit(
                    "batch.enqueued",
                    t=batch.arrival,
                    node=node,
                    operator=batch.operator,
                    port=batch.port,
                    count=batch.count,
                )
            if not busy[node] and not failed[node]:
                if tracing:
                    tracer.emit("node.busy", t=batch.arrival, node=node)
                start_service(node, batch.arrival)

        # Control polls.
        last_work = np.zeros(n)
        last_op_work: Dict[str, float] = {
            name: 0.0 for name in self.graph.operator_names
        }
        if self.controller is not None:
            period = float(self.controller.period)
            t = period
            while t < horizon + period:
                push_event(t, _CONTROL, None)
                t += period

        # Fault events, plus revert markers for windowed faults.
        if self.faults is not None:
            for fault in self.faults:
                push_event(fault.time, _FAULT, fault)
                if fault.duration is not None and fault.kind in (
                    "node.degrade", "operator.slowdown"
                ):
                    push_event(
                        fault.time + fault.duration,
                        _FAULT,
                        _FaultRevert(fault),
                    )

        # Arrival-rate drift: stream the resolved series (rate.spike
        # faults already folded in) through per-input Page–Hinkley
        # detectors.  The detectors are causal — each verdict sees only
        # rows up to its step — so only the trigger times are known up
        # front; each detection is enqueued at fault priority and its
        # event therefore precedes any same-instant control reaction.
        if drift_monitor is not None:
            for detection in drift_monitor.scan_rate_series(
                series, self.step_seconds
            ):
                push_event(detection.t, _FAULT, detection)

        def apply_move(
            move, now: float, failover: bool, decision: int = -1
        ) -> bool:
            """Apply one controller/failover migration; False if stale.

            Regular migrations stall both endpoints; failover moves
            stall only the destination (the source is dead — there is
            no state to serialize and nothing to schedule on it).
            ``decision`` tags the applied event and the endpoint stalls
            with the decision-audit id that caused them.
            """
            if assignment.get(move.operator) != move.source:
                return False  # stale decision; operator already moved
            if not failover and (
                failed[move.source] or failed[move.target]
            ):
                return False  # blind reactive move involving a dead node
            assignment[move.operator] = move.target
            # Queued work follows the operator.
            for batch in queues[move.source].take_operator(move.operator):
                queues[move.target].push(batch)
            endpoints = (
                (move.target,) if failover
                else (move.source, move.target)
            )
            for endpoint in endpoints:
                queues[endpoint].push_stall(move.pause_seconds, decision)
                if not busy[endpoint] and not failed[endpoint]:
                    if tracing:
                        tracer.emit("node.busy", t=now, node=endpoint)
                    start_service(endpoint, now)
            migrations.append(move)
            if tracing:
                tracer.emit(
                    "migration.applied",
                    t=now,
                    operator=move.operator,
                    source=move.source,
                    target=move.target,
                    pause=move.pause_seconds,
                    reason="failover" if failover else "balance",
                    **({"decision": decision} if decision >= 0 else {}),
                )
            return True

        partition_groups = getattr(self.graph, "partition_groups", {})

        def apply_repartition(
            rep: Repartition, now: float, decision: int = -1
        ) -> bool:
            """Swap a partition group's router selectivities in place.

            Rebuilds the group's route runtimes with the new key-range
            fractions (the shared :class:`QueryGraph` is never mutated)
            and stalls every node hosting a route or instance for the
            state-handoff pause — a migration-like reconfiguration that
            leaves the operator-to-node assignment untouched.  Returns
            ``False`` for a stale decision (group gone or the wrong
            width).
            """
            group = partition_groups.get(rep.operator)
            if group is None or len(rep.fractions) != group.ways:
                return False
            for route, fraction in zip(group.routes, rep.fractions):
                route_op = self.graph.operator(route)
                runtimes[route] = make_runtime(Filter(
                    route, cost=route_op.costs[0],
                    selectivity=float(fraction),
                ))
            endpoints = sorted({
                assignment[name]
                for name in (*group.routes, *group.parts)
            })
            for endpoint in endpoints:
                queues[endpoint].push_stall(rep.pause_seconds, decision)
                if not busy[endpoint] and not failed[endpoint]:
                    if tracing:
                        tracer.emit("node.busy", t=now, node=endpoint)
                    start_service(endpoint, now)
            repartitions.append(rep)
            if tracing:
                tracer.emit(
                    "elastic.repartition",
                    t=now,
                    operator=rep.operator,
                    fractions=[float(f) for f in rep.fractions],
                    pause=rep.pause_seconds,
                    **({"decision": decision} if decision >= 0 else {}),
                )
            return True

        def sample_volume(current: Dict[str, int]) -> float:
            """Feasible-volume ratio of the (degraded) cluster now."""
            down = [i for i, f in enumerate(failed) if f]
            return residual_volume_ratio(
                self.placement.model, capacities, current,
                failed_nodes=down, samples=_DRIFT_VOLUME_SAMPLES,
                ignore_stranded=True,
            )

        def volume_after_moves(moves) -> Optional[float]:
            """Ratio the cluster would keep once ``moves`` apply."""
            if not moves:
                return None
            trial = dict(assignment)
            for move in moves:
                if isinstance(move, Repartition):
                    continue  # assignment-preserving; no volume effect
                if trial.get(move.operator) == move.source:
                    trial[move.operator] = move.target
            return sample_volume(trial)

        def emit_drift(detection: DriftDetection) -> None:
            tracer.emit(
                "drift.detected",
                t=detection.t,
                signal=detection.signal,
                direction=detection.direction,
                statistic=detection.statistic,
                threshold=detection.threshold,
                observed=detection.observed,
                baseline=detection.baseline,
                **(
                    {} if detection.input is None
                    else {"input": detection.input}
                ),
            )

        def emit_decisions(
            trigger: str,
            now: float,
            moves,
            loads=None,
            node: Optional[int] = None,
            volume_before: Optional[float] = None,
            volume_after: Optional[float] = None,
        ) -> int:
            """Emit the pending decision record(s) for one deliberation.

            Controllers with telemetry support produced real records; for
            anything else a minimal record is synthesized so every
            control poll / fault hook still yields exactly one
            ``decision.evaluated`` event.  Returns the id the caller
            tags the resulting migrations with.
            """
            records = [] if telemetry is None else telemetry.drain()
            if not records:
                records = [DecisionRecord(
                    trigger=trigger,
                    controller=type(self.controller).__name__,
                    loads=[],
                    reason="migrate" if moves else "unobserved",
                    actions=len(moves),
                    node=node,
                )]
            decision_id = -1
            for record in records:
                decision_id = next(decision_seq)
                decision_counts[record.trigger] = (
                    decision_counts.get(record.trigger, 0) + 1
                )
                if not record.loads and loads is not None:
                    record.loads = [float(value) for value in loads]
                extra: Dict[str, object] = {}
                if record.candidates:
                    extra["candidates"] = [
                        c.to_json_obj() for c in record.candidates
                    ]
                if record.node is not None:
                    extra["node"] = record.node
                if record.burn_rate is not None:
                    extra["burn_rate"] = record.burn_rate
                if volume_before is not None:
                    extra["volume_before"] = volume_before
                if volume_after is not None:
                    extra["volume_after"] = volume_after
                tracer.emit(
                    "decision.evaluated",
                    t=now,
                    decision=decision_id,
                    trigger=record.trigger,
                    controller=record.controller,
                    reason=record.reason,
                    actions=record.actions,
                    loads=list(record.loads),
                    **extra,
                )
            return decision_id

        # Source arrivals.
        for k, input_name in enumerate(self.graph.input_names):
            process = ArrivalProcess(
                series[:, k],
                self.step_seconds,
                kind=self.arrival_kind,
                seed=None if self.seed is None else self.seed * 8191 + k,
            )
            routes = self._routes[input_name]
            for start, count in process.steps():
                tuples_in += count
                for consumer, port in routes:
                    span = -1
                    if tracing:
                        span = spans.open_span(
                            start, operator=consumer, port=port,
                            count=count, birth=start,
                        )
                    push_event(
                        start,
                        _ARRIVAL,
                        _Batch(birth=start, arrival=start,
                               operator=consumer, port=port, count=count,
                               span=span),
                    )

        def apply_fault(fault: FaultEvent, now: float) -> None:
            applied_faults.append(fault)
            if tracing:
                tracer.emit(
                    "fault.injected",
                    t=now,
                    kind=fault.kind,
                    **{
                        key: value
                        for key, value in (
                            ("node", fault.node),
                            ("operator", fault.operator),
                            ("factor", fault.factor),
                            ("duration", fault.duration),
                        )
                        if value is not None
                    },
                )
            if fault.kind == "node.crash":
                failed[fault.node] = True
                hook = getattr(self.controller, "on_node_failed", None)
                if hook is not None:
                    down = [i for i, f in enumerate(failed) if f]
                    volume_before = (
                        sample_volume(assignment)
                        if drift_monitor is not None else None
                    )
                    moves = list(hook(
                        now, fault.node, assignment,
                        self.placement.model, capacities, down,
                    ))
                    decision_id = -1
                    if tracing:
                        decision_id = emit_decisions(
                            "fault", now, moves, node=fault.node,
                            volume_before=volume_before,
                            volume_after=volume_after_moves(moves),
                        )
                    for move in moves:
                        apply_move(
                            move, now, failover=True,
                            decision=decision_id,
                        )
            elif fault.kind == "node.recover":
                failed[fault.node] = False
                hook = getattr(self.controller, "on_node_recovered", None)
                if hook is not None:
                    down = [i for i, f in enumerate(failed) if f]
                    volume_before = (
                        sample_volume(assignment)
                        if drift_monitor is not None else None
                    )
                    moves = list(hook(
                        now, fault.node, assignment,
                        self.placement.model, capacities, down,
                    ))
                    decision_id = -1
                    if tracing:
                        decision_id = emit_decisions(
                            "recover", now, moves, node=fault.node,
                            volume_before=volume_before,
                            volume_after=volume_after_moves(moves),
                        )
                    for move in moves:
                        apply_move(
                            move, now, failover=False,
                            decision=decision_id,
                        )
                # Resume whatever queued up while the node was down.
                if not busy[fault.node] and not queues[fault.node].is_empty:
                    if tracing:
                        tracer.emit("node.busy", t=now, node=fault.node)
                    start_service(fault.node, now)
            elif fault.kind == "node.degrade":
                capacities[fault.node] = nominal[fault.node] * fault.factor
            elif fault.kind == "operator.slowdown":
                slow[fault.operator] = fault.factor
            # rate.spike was folded into the series before arrivals were
            # generated; its fault.injected event above is informational.

        def revert_fault(fault: FaultEvent, now: float) -> None:
            if tracing:
                tracer.emit(
                    "fault.reverted",
                    t=now,
                    kind=fault.kind,
                    **(
                        {"node": fault.node}
                        if fault.node is not None
                        else {"operator": fault.operator}
                    ),
                )
            if fault.kind == "node.degrade":
                capacities[fault.node] = nominal[fault.node]
            elif fault.kind == "operator.slowdown":
                slow.pop(fault.operator, None)

        # Event loop.
        while events:
            time, priority, _, payload = heapq.heappop(events)

            if priority == _FAULT:
                if isinstance(payload, _FaultRevert):
                    revert_fault(payload.event, time)
                elif isinstance(payload, DriftDetection):
                    emit_drift(payload)
                else:
                    apply_fault(payload, time)
                continue

            if priority == _CONTROL:
                period = float(self.controller.period)
                recent = (node_work - last_work) / (capacities * period)
                last_work = node_work.copy()
                op_loads = {}
                for name, stats in operator_stats.items():
                    op_loads[name] = (
                        stats.work_seconds - last_op_work[name]
                    ) / period
                    last_op_work[name] = stats.work_seconds
                # Feasible-volume-over-time: sample once per poll (only
                # while tracing) and run it through the drift detector.
                volume_now: Optional[float] = None
                if drift_monitor is not None:
                    volume_now = sample_volume(assignment)
                    detection = drift_monitor.observe(
                        "feasible_volume", time, volume_now
                    )
                    if detection is not None:
                        emit_drift(detection)
                moves = list(self.controller.decide(
                    time, recent, assignment, self.placement.model,
                    capacities, operator_loads=op_loads,
                ))
                decision_id = -1
                if tracing:
                    decision_id = emit_decisions(
                        "periodic", time, moves, loads=recent,
                        volume_before=volume_now,
                        volume_after=volume_after_moves(moves),
                    )
                for move in moves:
                    if isinstance(move, Repartition):
                        apply_repartition(move, time, decision=decision_id)
                        continue
                    if tracing:
                        tracer.emit(
                            "migration.decided",
                            t=time,
                            operator=move.operator,
                            source=move.source,
                            target=move.target,
                            pause=move.pause_seconds,
                            decision=decision_id,
                        )
                    apply_move(
                        move, time, failover=False, decision=decision_id
                    )
                continue

            if priority == _ARRIVAL:
                enqueue(payload)
                continue

            # Completion.
            completion: _Completion = payload
            node = completion.node
            node_work[node] += completion.work
            bin_index = min(int(time / self.step_seconds), steps - 1)
            timeline[bin_index, node] += completion.work
            batch = completion.batch
            # A completion with output and no onward deliveries produced
            # sink tuples: their end-to-end latency is known here, and the
            # trace carries it on the serviced event so analyzers can
            # rebuild LatencyStats exactly (repro.obs.analyze).
            sink_stream: Optional[str] = None
            if (batch is not None and completion.out_count > 0
                    and not completion.deliveries):
                sink_stream = self.graph.output_of(batch.operator).name
            if tracing:
                if batch is None:
                    tracer.emit(
                        "node.stall", t=time, node=node,
                        work=completion.work,
                        start=completion.start,
                        **(
                            {"decision": completion.decision}
                            if completion.decision >= 0 else {}
                        ),
                    )
                else:
                    # Sink closes carry the identical latency float the
                    # engine records below, so trace analyzers reconcile
                    # with SimulationResult bit-for-bit.
                    sink_latency_s: Optional[float] = (
                        None if sink_stream is None
                        else time - batch.birth
                    )
                    extra = (
                        {} if sink_stream is None
                        else {"sink": sink_stream,
                              "latency": sink_latency_s}
                    )
                    tracer.emit(
                        "batch.serviced",
                        t=time,
                        node=node,
                        operator=batch.operator,
                        port=batch.port,
                        count=batch.count,
                        out=completion.out_count,
                        work=completion.work,
                        **extra,
                    )
                    spans.close_span(
                        batch.span,
                        time,
                        node=node,
                        start=completion.start,
                        work=completion.work,
                        out=completion.out_count,
                        sink=sink_stream,
                        latency=sink_latency_s,
                    )
            if batch is not None and completion.out_count > 0:
                if completion.deliveries:
                    for consumer, port, recv in completion.deliveries:
                        span = -1
                        if tracing:
                            span = spans.open_span(
                                time, operator=consumer, port=port,
                                count=completion.out_count,
                                birth=batch.birth, parent=batch.span,
                            )
                        push_event(
                            time,
                            _ARRIVAL,
                            _Batch(birth=batch.birth, arrival=time,
                                   operator=consumer, port=port,
                                   count=completion.out_count,
                                   extra_work=recv,
                                   span=span),
                        )
                elif sink_stream is not None:
                    tuples_out += completion.out_count
                    sample = time - batch.birth
                    latency.record(sample, completion.out_count)
                    sink_latency.setdefault(
                        sink_stream, LatencyStats()
                    ).record(sample, completion.out_count)
                    if slo_watcher is not None:
                        slo_watcher.observe(
                            time, sample, completion.out_count
                        )
            if queues[node].is_empty or failed[node]:
                # A crashed node goes quiet after its in-flight batch
                # even if work is still queued (it resumes on recovery).
                busy[node] = False
                last_free[node] = time
                if tracing:
                    tracer.emit("node.idle", t=time, node=node)
            else:
                start_service(node, time)

        utilization = node_work / (nominal * horizon)
        backlog = np.maximum(last_free - horizon, 0.0)
        # Tuples still queued when the event loop drained: work stranded
        # on nodes that were down (or degraded past the horizon) with no
        # failover to rescue it.
        stranded = sum(queues[node].queued_tuples() for node in range(n))
        if tracing:
            extra_end = (
                {}
                if self.faults is None
                else {
                    "faults": len(applied_faults),
                    "stranded_tuples": stranded,
                }
            )
            if repartitions:
                extra_end["repartitions"] = len(repartitions)
            tracer.emit(
                "sim.end",
                t=horizon,
                node_busy=[float(w) for w in node_work],
                tuples_in=tuples_in,
                tuples_out=tuples_out,
                max_utilization=float(utilization.max()),
                migrations=len(migrations),
                **extra_end,
            )
        if telemetry is not None:
            # Detach so a later untraced run of the same controller goes
            # back to allocating nothing.
            self.controller.telemetry = None
        if self.metrics is not None:
            self._record_metrics(
                self.metrics, utilization, latency, tuples_in, tuples_out,
                len(migrations), applied_faults,
            )
            if decision_counts:
                decided = self.metrics.counter(
                    "rod_decisions_total",
                    "controller decision records emitted",
                    ("trigger",),
                )
                for trigger, count in sorted(decision_counts.items()):
                    decided.labels(trigger=trigger).inc(count)
            if drift_monitor is not None:
                record_drift_metrics(
                    self.metrics, drift_monitor.detections,
                    drift_monitor.summary(),
                )
        return SimulationResult(
            duration=horizon,
            node_busy=node_work,
            node_utilization=utilization,
            backlog_seconds=backlog,
            latency=latency,
            sink_latency=sink_latency,
            operator_stats=operator_stats,
            tuples_in=tuples_in,
            tuples_out=tuples_out,
            migrations=migrations,
            work_timeline=timeline,
            faults=applied_faults,
            stranded_tuples=stranded,
        )

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _record_metrics(
        registry: MetricsRegistry,
        utilization: np.ndarray,
        latency: LatencyStats,
        tuples_in: int,
        tuples_out: int,
        migrations: int,
        faults: Sequence[FaultEvent] = (),
    ) -> None:
        """Fold one run's outcomes into the metrics registry.

        Runs once after the event loop — never on the hot path — so an
        attached registry costs nothing per event.
        """
        tuples = registry.counter(
            "rod_sim_tuples_total",
            "source tuples injected / sink tuples produced",
            ("direction",),
        )
        tuples.labels(direction="in").inc(tuples_in)
        tuples.labels(direction="out").inc(tuples_out)
        registry.counter(
            "rod_sim_migrations_total", "operator migrations applied"
        ).inc(migrations)
        if faults:
            fault_counter = registry.counter(
                "rod_sim_faults_total",
                "fault events injected into simulation runs",
                ("kind",),
            )
            for fault in faults:
                fault_counter.labels(kind=fault.kind).inc()
        registry.counter(
            "rod_sim_runs_total", "simulation runs completed"
        ).inc()
        node_gauge = registry.gauge(
            "rod_sim_node_utilization",
            "per-node utilization of the latest run",
            ("node",),
        )
        for node, value in enumerate(utilization):
            node_gauge.labels(node=node).set(float(value))
        quantiles = registry.gauge(
            "rod_sim_latency_seconds",
            "end-to-end latency quantiles of the latest run",
            ("quantile",),
        )
        for name, value in latency.percentiles().items():
            quantiles.labels(quantile=name).set(value)
        quantiles.labels(quantile="mean").set(latency.mean())

    def _resolve_series(
        self,
        rate_series: Optional[np.ndarray],
        rates: Optional[Sequence[float]],
        duration: Optional[float],
    ) -> np.ndarray:
        d = self.graph.num_inputs
        if rate_series is not None:
            if rates is not None or duration is not None:
                raise ValueError(
                    "pass either rate_series or (rates, duration), not both"
                )
            series = np.asarray(rate_series, dtype=float)
            if series.ndim != 2 or series.shape[1] != d:
                raise ValueError(
                    f"rate series must have shape (steps, {d}), "
                    f"got {series.shape}"
                )
            return series
        if rates is None or duration is None:
            raise ValueError("pass rate_series, or both rates and duration")
        if duration <= 0:
            raise ValueError("duration must be > 0")
        r = np.asarray(rates, dtype=float)
        if r.shape != (d,):
            raise ValueError(f"expected {d} rates, got shape {r.shape}")
        steps = max(1, int(round(duration / self.step_seconds)))
        return np.tile(r, (steps, 1))
