"""Empirical feasibility probing (the Borealis protocol of Section 7.1).

The prototype experiments measure feasible-set size by running the system
at sampled workload points and checking whether any node saturates.  This
module reproduces that protocol on the simulator: run each candidate rate
point for a fixed horizon and declare it feasible iff no node's demand
reaches its capacity and all queues drain.

The ``fig-sim-fid`` experiment cross-checks these empirical verdicts
against the analytic predicate ``L^n R <= C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.plans import Placement
from ..obs.trace import Tracer
from .engine import Simulator, TransferCosts

__all__ = ["FeasibilityProbe", "empirical_feasible_fraction"]


@dataclass(frozen=True)
class FeasibilityProbe:
    """Configuration of the utilization probe.

    ``tracer``, if given, receives one ``feasibility.probe`` event per
    verdict (rates, feasibility, peak utilization) — the probe itself
    runs the simulator untraced, so sweeping many rate points does not
    flood the event stream with per-batch records.
    """

    duration: float = 20.0
    step_seconds: float = 0.1
    utilization_threshold: float = 0.99
    transfer_costs: TransferCosts = 0.0
    arrival_kind: str = "deterministic"
    seed: Optional[int] = None
    tracer: Optional[Tracer] = None

    def is_feasible(
        self, placement: Placement, input_rates: Sequence[float]
    ) -> bool:
        """Run the placement at constant ``input_rates`` and probe it."""
        simulator = Simulator(
            placement,
            step_seconds=self.step_seconds,
            transfer_costs=self.transfer_costs,
            arrival_kind=self.arrival_kind,
            seed=self.seed,
        )
        result = simulator.run(rates=input_rates, duration=self.duration)
        verdict = result.is_feasible(
            utilization_threshold=self.utilization_threshold,
            # A drained system may still carry up to one batch of residual
            # service time; tolerate a step's worth.
            backlog_tolerance=self.step_seconds,
        )
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                "feasibility.probe",
                rates=[float(r) for r in input_rates],
                feasible=verdict,
                max_utilization=result.max_utilization,
                backlog_seconds=float(result.backlog_seconds.max()),
            )
        return verdict


def empirical_feasible_fraction(
    placement: Placement,
    rate_points: np.ndarray,
    probe: Optional[FeasibilityProbe] = None,
) -> float:
    """Fraction of the given physical rate points that probe feasible.

    When the points are drawn uniformly from the ideal feasible set (see
    :func:`repro.workload.rates.ideal_rate_points`), this estimates the
    same ratio-to-ideal that the QMC volume computation returns — but by
    actually running the system, as the Borealis experiments did.
    """
    points = np.asarray(rate_points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"rate_points must be 2-D, got shape {points.shape}")
    if points.shape[0] == 0:
        raise ValueError("need at least one rate point")
    probe = probe or FeasibilityProbe()
    verdicts = [
        probe.is_feasible(placement, points[i]) for i in range(points.shape[0])
    ]
    return float(np.mean(verdicts))
