"""Measurement containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["LatencyStats", "OperatorStats", "SimulationResult"]


@dataclass
class OperatorStats:
    """Per-operator counters gathered during a run."""

    tuples_in: int = 0
    tuples_out: int = 0
    work_seconds: float = 0.0

    @property
    def measured_cost(self) -> float:
        """Average CPU seconds per input tuple (0 if nothing processed)."""
        return self.work_seconds / self.tuples_in if self.tuples_in else 0.0

    @property
    def measured_selectivity(self) -> float:
        """Output/input tuple ratio (0 if nothing processed)."""
        return self.tuples_out / self.tuples_in if self.tuples_in else 0.0


class LatencyStats:
    """Weighted end-to-end latency samples (seconds).

    **Empty-sample contract:** every aggregate (:meth:`mean`,
    :meth:`percentile`, :meth:`percentiles`, :meth:`maximum`) returns
    ``0.0`` when no sample was recorded — an unloaded system has no
    latency, not an undefined one.  Callers that must distinguish "no
    traffic" from "zero latency" check :attr:`is_empty` first; no
    aggregate ever raises on emptiness.
    """

    def __init__(self) -> None:
        self._values: List[float] = []
        self._weights: List[int] = []

    def record(self, latency: float, count: int = 1) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._values.append(float(latency))
        self._weights.append(int(count))

    @property
    def total_tuples(self) -> int:
        return int(sum(self._weights))

    @property
    def is_empty(self) -> bool:
        return not self._values

    def mean(self) -> float:
        """Weighted mean latency; ``0.0`` on empty samples."""
        if self.is_empty:
            return 0.0
        values = np.asarray(self._values)
        weights = np.asarray(self._weights, dtype=float)
        return float(np.average(values, weights=weights))

    def percentile(self, q: float) -> float:
        """Weighted percentile, ``q`` in [0, 100]; ``0.0`` on empty."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.is_empty:
            return 0.0
        values = np.asarray(self._values)
        weights = np.asarray(self._weights, dtype=float)
        order = np.argsort(values)
        values, weights = values[order], weights[order]
        cumulative = np.cumsum(weights)
        threshold = q / 100.0 * cumulative[-1]
        index = int(np.searchsorted(cumulative, threshold))
        return float(values[min(index, values.size - 1)])

    def percentiles(self) -> Dict[str, float]:
        """The headline quantiles ``{"p50", "p95", "p99"}``.

        All ``0.0`` on empty samples, per the class contract.
        """
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def maximum(self) -> float:
        """Largest recorded latency; ``0.0`` on empty samples."""
        return max(self._values) if self._values else 0.0

    def merge(self, other: "LatencyStats") -> None:
        self._values.extend(other._values)
        self._weights.extend(other._weights)


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    duration:
        Simulated wall-clock horizon in seconds (arrival window).
    node_busy:
        CPU-seconds of work *performed or queued* per node.
    node_utilization:
        ``node_busy / (capacity * duration)`` — exceeds 1.0 when a node
        received more work than it could finish within the horizon.
    backlog_seconds:
        Wall-clock seconds past the horizon each node would need to drain
        its queue (0 for stable nodes).
    latency:
        End-to-end latency over all sink tuples.
    sink_latency:
        Per-sink-stream latency statistics.
    tuples_in / tuples_out:
        Source tuples injected and sink tuples produced.
    """

    duration: float
    node_busy: np.ndarray
    node_utilization: np.ndarray
    backlog_seconds: np.ndarray
    latency: LatencyStats
    sink_latency: Dict[str, LatencyStats] = field(default_factory=dict)
    operator_stats: Dict[str, OperatorStats] = field(default_factory=dict)
    tuples_in: int = 0
    tuples_out: int = 0
    #: Operator moves applied by a migration controller, in time order.
    migrations: List[object] = field(default_factory=list)
    #: Fault events applied by a :class:`repro.faults.FaultSchedule`,
    #: in time order (empty for fault-free runs).
    faults: List[object] = field(default_factory=list)
    #: Tuples still queued when the run drained — work stranded on
    #: crashed nodes that no failover controller rescued.
    stranded_tuples: int = 0
    #: CPU-seconds served per (time bin, node); bins are ``step_seconds``
    #: wide and cover the arrival horizon (later work folds into the last
    #: bin).  Empty array when the engine was asked not to record it.
    work_timeline: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0))
    )

    def utilization_timeline(
        self, capacities: np.ndarray, step_seconds: float
    ) -> np.ndarray:
        """Per-bin utilization: served work / (capacity * bin width)."""
        if self.work_timeline.size == 0:
            raise ValueError("this run did not record a work timeline")
        capacities = np.asarray(capacities, dtype=float)
        return self.work_timeline / (capacities[None, :] * step_seconds)

    @property
    def migration_count(self) -> int:
        return len(self.migrations)

    @property
    def total_migration_pause(self) -> float:
        """Seconds of node stall spent on migrations (both endpoints)."""
        return float(
            sum(2.0 * m.pause_seconds for m in self.migrations)
        )

    @property
    def fault_count(self) -> int:
        return len(self.faults)

    @property
    def max_utilization(self) -> float:
        return float(self.node_utilization.max())

    def is_feasible(
        self,
        utilization_threshold: float = 0.99,
        backlog_tolerance: float = 1e-6,
    ) -> bool:
        """The paper's probe: no node saturated, queues drained."""
        return (
            self.max_utilization <= utilization_threshold
            and float(self.backlog_seconds.max()) <= backlog_tolerance
        )

    def summary(self) -> str:
        quantiles = self.latency.percentiles()
        text = (
            f"duration={self.duration:g}s in={self.tuples_in} "
            f"out={self.tuples_out} max_util={self.max_utilization:.3f} "
            f"mean_latency={self.latency.mean() * 1e3:.2f}ms "
            f"p50={quantiles['p50'] * 1e3:.2f}ms "
            f"p95={quantiles['p95'] * 1e3:.2f}ms "
            f"p99={quantiles['p99'] * 1e3:.2f}ms"
        )
        if self.faults:
            text += (
                f" faults={self.fault_count} "
                f"stranded={self.stranded_tuples}"
            )
        return text
